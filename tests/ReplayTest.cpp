//===- ReplayTest.cpp - Deterministic scenario replay tests ------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "explorer/Replay.h"

#include "explorer/Search.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

TEST(ReplayTest, RoundTripSerialization) {
  std::vector<ReplayStep> Steps = {
      {ReplayStep::Kind::Env, 3},
      {ReplayStep::Kind::Sched, 1},
      {ReplayStep::Kind::Toss, 0},
      {ReplayStep::Kind::Sched, 0},
  };
  std::string Text = replayToString(Steps);
  EXPECT_EQ(Text, "e3 s1 t0 s0");

  std::vector<ReplayStep> Parsed;
  ASSERT_TRUE(parseReplay(Text, Parsed));
  ASSERT_EQ(Parsed.size(), Steps.size());
  for (size_t I = 0; I != Steps.size(); ++I) {
    EXPECT_EQ(Parsed[I].K, Steps[I].K);
    EXPECT_EQ(Parsed[I].Value, Steps[I].Value);
  }
}

TEST(ReplayTest, ParseRejectsGarbage) {
  std::vector<ReplayStep> Out;
  EXPECT_FALSE(parseReplay("x1", Out));
  EXPECT_FALSE(parseReplay("s", Out));
  EXPECT_FALSE(parseReplay("s1b", Out));
  EXPECT_TRUE(parseReplay("", Out));
  EXPECT_TRUE(Out.empty());
}

TEST(ReplayTest, DeadlockReportReplaysToTheSameDeadlock) {
  auto Mod = mustCompile(R"(
sem a(1);
sem b(1);
chan done[2];

proc left() {
  sem_wait(a);
  sem_wait(b);
  send(done, 1);
  sem_signal(b);
  sem_signal(a);
}

proc right() {
  sem_wait(b);
  sem_wait(a);
  send(done, 2);
  sem_signal(a);
  sem_signal(b);
}

process l = left();
process r = right();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(*Mod, Opts);
  Ex.run();
  ASSERT_FALSE(Ex.reports().empty());
  const ErrorReport &Rep = Ex.reports()[0];
  ASSERT_EQ(Rep.Kind, ErrorReport::Type::Deadlock);
  ASSERT_FALSE(Rep.Choices.empty());

  ReplayResult R = replayChoices(*Mod, Rep.Choices);
  EXPECT_TRUE(R.Faithful);
  EXPECT_EQ(R.Final, GlobalStateKind::Deadlock);
  EXPECT_EQ(traceToString(R.TraceOut), traceToString(Rep.TraceToError));
}

TEST(ReplayTest, AssertionReportReplaysToTheSameViolation) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = VS_toss(3);
  send(c, x);
  VS_assert(x != 2);
}

process m = main();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(*Mod, Opts);
  Ex.run();
  ASSERT_EQ(Ex.reports().size(), 1u);
  const ErrorReport &Rep = Ex.reports()[0];

  ReplayResult R = replayChoices(*Mod, Rep.Choices);
  EXPECT_TRUE(R.Faithful);
  ASSERT_EQ(R.Violations.size(), 1u);
  // The offending toss outcome (2) is visible in the replayed trace.
  ASSERT_FALSE(R.TraceOut.empty());
  EXPECT_EQ(R.TraceOut[0].Payload, Value::makeInt(2));
}

TEST(ReplayTest, EnvChoicesReplayOnOpenModules) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = env_input();
  send(c, x);
  VS_assert(x != 1);
}

process m = main();
)");
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Opts.Runtime.EnvDomainBound = 3;
  Explorer Ex(*Mod, Opts);
  Ex.run();
  ASSERT_EQ(Ex.reports().size(), 1u);

  SystemOptions SysOpts;
  SysOpts.EnvDomainBound = 3;
  ReplayResult R = replayChoices(*Mod, Ex.reports()[0].Choices, SysOpts);
  EXPECT_TRUE(R.Faithful);
  EXPECT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.TraceOut[0].Payload, Value::makeInt(1));
}

TEST(ReplayTest, UnfaithfulWhenChoicesDoNotFit) {
  auto Mod = mustCompile(R"(
chan c[2];

proc main() {
  send(c, 1);
}

process m = main();
)");
  // Schedule a process that does not exist.
  ReplayResult R = replayChoices(*Mod, {{ReplayStep::Kind::Sched, 7}});
  EXPECT_FALSE(R.Faithful);

  // Toss step where a schedule is expected.
  ReplayResult R2 = replayChoices(*Mod, {{ReplayStep::Kind::Toss, 0}});
  EXPECT_FALSE(R2.Faithful);
}

TEST(ReplayTest, ReportRenderingIncludesReplayLine) {
  auto Mod = mustCompile(R"(
proc main() {
  var x;
  x = VS_toss(1);
  VS_assert(x == 0);
}

process m = main();
)");
  Explorer Ex(*Mod, {});
  Ex.run();
  ASSERT_FALSE(Ex.reports().empty());
  std::string Text = Ex.reports()[0].str();
  EXPECT_NE(Text.find("replay: "), std::string::npos) << Text;
}

} // namespace
