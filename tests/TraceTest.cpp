//===- TraceTest.cpp - Visible-trace and value tests -------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "runtime/Trace.h"

#include "runtime/Value.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

VisibleEvent mkEvent(int Proc, BuiltinKind Op, const std::string &Obj,
                     Value Payload, bool HasPayload = true) {
  VisibleEvent E;
  E.ProcessIndex = Proc;
  E.Op = Op;
  E.Object = Obj;
  E.Payload = Payload;
  E.HasPayload = HasPayload;
  return E;
}

TEST(ValueTest, EqualityAndKinds) {
  EXPECT_EQ(Value::makeInt(3), Value::makeInt(3));
  EXPECT_FALSE(Value::makeInt(3) == Value::makeInt(4));
  EXPECT_EQ(Value::makeUnknown(), Value::makeUnknown());
  EXPECT_FALSE(Value::makeInt(0) == Value::makeUnknown());

  Address A;
  A.Sp = Address::Space::Frame;
  A.FrameIndex = 1;
  A.SlotIndex = 2;
  Address B = A;
  EXPECT_EQ(Value::makePointer(A), Value::makePointer(B));
  B.ElemIndex = 3;
  EXPECT_FALSE(Value::makePointer(A) == Value::makePointer(B));
}

TEST(ValueTest, Rendering) {
  EXPECT_EQ(Value::makeInt(42).str(), "42");
  EXPECT_EQ(Value::makeUnknown().str(), "unknown");
  Address A;
  A.Sp = Address::Space::Global;
  A.SlotIndex = 5;
  EXPECT_EQ(Value::makePointer(A).str(), "&[global slot 5]");
}

TEST(TraceTest, EventEquality) {
  VisibleEvent A = mkEvent(0, BuiltinKind::Send, "c", Value::makeInt(1));
  VisibleEvent B = mkEvent(0, BuiltinKind::Send, "c", Value::makeInt(1));
  EXPECT_TRUE(A == B);
  B.Payload = Value::makeInt(2);
  EXPECT_FALSE(A == B);
  B = A;
  B.ProcessIndex = 1;
  EXPECT_FALSE(A == B);
  B = A;
  B.Object = "d";
  EXPECT_FALSE(A == B);
}

TEST(TraceTest, UnknownPayloadSubsumesAnything) {
  VisibleEvent General =
      mkEvent(0, BuiltinKind::Send, "c", Value::makeUnknown());
  VisibleEvent Concrete =
      mkEvent(0, BuiltinKind::Send, "c", Value::makeInt(77));
  EXPECT_TRUE(eventSubsumes(General, Concrete));
  EXPECT_FALSE(eventSubsumes(Concrete, General))
      << "a concrete payload does not subsume unknown";
  // Subsumption never crosses operations or objects.
  VisibleEvent OtherObj =
      mkEvent(0, BuiltinKind::Send, "d", Value::makeInt(77));
  EXPECT_FALSE(eventSubsumes(General, OtherObj));
}

TEST(TraceTest, TraceSubsumptionIsPositional) {
  Trace General = {mkEvent(0, BuiltinKind::Send, "c", Value::makeUnknown()),
                   mkEvent(1, BuiltinKind::Recv, "c", Value::makeInt(5))};
  Trace Concrete = {mkEvent(0, BuiltinKind::Send, "c", Value::makeInt(9)),
                    mkEvent(1, BuiltinKind::Recv, "c", Value::makeInt(5))};
  EXPECT_TRUE(traceSubsumes(General, Concrete));

  Trace Shorter = {Concrete[0]};
  EXPECT_FALSE(traceSubsumes(General, Shorter)) << "length must match";

  std::swap(Concrete[0], Concrete[1]);
  EXPECT_FALSE(traceSubsumes(General, Concrete)) << "order matters";
}

TEST(TraceTest, Rendering) {
  Trace T = {mkEvent(2, BuiltinKind::SemWait, "mutex", Value::makeInt(0),
                     /*HasPayload=*/false),
             mkEvent(0, BuiltinKind::VsAssert, "", Value::makeInt(1))};
  std::string Text = traceToString(T);
  EXPECT_NE(Text.find("P2:sem_wait(mutex)"), std::string::npos) << Text;
  EXPECT_NE(Text.find("P0:VS_assert=1"), std::string::npos) << Text;
}

} // namespace
