//===- LexerTest.cpp - MiniC lexer tests ------------------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

std::vector<Token> lexOk(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

std::vector<TokenKind> kindsOf(const std::vector<Token> &Tokens) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Tokens = lexOk("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Tokens = lexOk("var proc process chan sem shared if else while for "
                      "switch case default return break continue goto env "
                      "unknown myvar _x x9");
  std::vector<TokenKind> Expected = {
      TokenKind::KwVar,      TokenKind::KwProc,    TokenKind::KwProcess,
      TokenKind::KwChan,     TokenKind::KwSem,     TokenKind::KwShared,
      TokenKind::KwIf,       TokenKind::KwElse,    TokenKind::KwWhile,
      TokenKind::KwFor,      TokenKind::KwSwitch,  TokenKind::KwCase,
      TokenKind::KwDefault,  TokenKind::KwReturn,  TokenKind::KwBreak,
      TokenKind::KwContinue, TokenKind::KwGoto,    TokenKind::KwEnv,
      TokenKind::KwUnknown,  TokenKind::Identifier, TokenKind::Identifier,
      TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
  EXPECT_EQ(Tokens[19].Text, "myvar");
}

TEST(LexerTest, OperatorsIncludingTwoCharForms) {
  auto Tokens = lexOk("= == ! != < <= > >= & && || + - * / %");
  std::vector<TokenKind> Expected = {
      TokenKind::Assign,  TokenKind::EqEq,      TokenKind::Bang,
      TokenKind::BangEq,  TokenKind::Less,      TokenKind::LessEq,
      TokenKind::Greater, TokenKind::GreaterEq, TokenKind::Amp,
      TokenKind::AmpAmp,  TokenKind::PipePipe,  TokenKind::Plus,
      TokenKind::Minus,   TokenKind::Star,      TokenKind::Slash,
      TokenKind::Percent, TokenKind::Eof};
  EXPECT_EQ(kindsOf(Tokens), Expected);
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = lexOk("0 42 123456789");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 123456789);
}

TEST(LexerTest, AtomsInternConsistently) {
  auto Tokens = lexOk("'even' 'odd' 'even' \"even\"");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[0].IntValue, Tokens[2].IntValue);
  EXPECT_EQ(Tokens[0].IntValue, Tokens[3].IntValue); // Quote style agnostic.
  EXPECT_NE(Tokens[0].IntValue, Tokens[1].IntValue);
  EXPECT_GE(Tokens[0].IntValue, AtomTable::FirstAtomId);
  EXPECT_EQ(AtomTable::global().spelling(Tokens[0].IntValue), "even");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Tokens = lexOk("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
  EXPECT_EQ(Tokens[2].Text, "c");
}

TEST(LexerTest, SourceLocationsTrackLinesAndColumns) {
  auto Tokens = lexOk("a\n  b\n\n    c");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Tokens[1].Loc, SourceLoc(2, 3));
  EXPECT_EQ(Tokens[2].Loc, SourceLoc(4, 5));
}

TEST(LexerTest, UnterminatedBlockCommentIsAnError) {
  DiagnosticEngine Diags;
  Lexer Lex("a /* never closed", Diags);
  Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnterminatedAtomIsAnError) {
  DiagnosticEngine Diags;
  Lexer Lex("x = 'oops\n", Diags);
  Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StrayCharacterIsAnErrorButLexingContinues) {
  DiagnosticEngine Diags;
  Lexer Lex("a @ b", Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
  // a and b still lexed.
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, SinglePipeIsAnError) {
  DiagnosticEngine Diags;
  Lexer Lex("a | b", Diags);
  Lex.lexAll();
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
