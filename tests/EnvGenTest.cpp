//===- EnvGenTest.cpp - Tests for the naive-environment baseline -----------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "envgen/NaiveClose.h"

#include "cfg/CfgVerifier.h"
#include "closing/Pipeline.h"
#include "explorer/Search.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

TEST(EnvGenTest, RewritesEnvInputsToTosses) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = env_input();
  send(c, x);
  env_output(x);
}

process m = main();
)");
  NaiveCloseStats Stats;
  Module Naive = naiveCloseModule(*Mod, {3}, &Stats);
  EXPECT_EQ(Stats.EnvInputsRewritten, 1u);
  EXPECT_EQ(Stats.EnvOutputsRewritten, 1u);

  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(Naive, Diags)) << Diags.str();

  // No env interface remains.
  for (const ProcCfg &Proc : Naive.Procs)
    for (const CfgNode &Node : Proc.Nodes)
      if (Node.Kind == CfgNodeKind::Call) {
        EXPECT_TRUE(Node.Builtin != BuiltinKind::EnvInput &&
                    Node.Builtin != BuiltinKind::EnvOutput);
      }
}

TEST(EnvGenTest, WrapsEnvProcessArguments) {
  auto Mod = mustCompile(figure2Source());
  NaiveCloseStats Stats;
  Module Naive = naiveCloseModule(*Mod, {7}, &Stats);
  EXPECT_EQ(Stats.WrappersSynthesized, 1u);

  DiagnosticEngine Diags;
  ASSERT_TRUE(verifyModule(Naive, Diags)) << Diags.str();
  ASSERT_EQ(Naive.Processes.size(), 1u);
  EXPECT_TRUE(Naive.Processes[0].Args.empty());
  EXPECT_NE(Naive.findProc(Naive.Processes[0].ProcName), nullptr);

  EnvAnalysis Analysis(Naive);
  EXPECT_TRUE(Analysis.moduleIsClosed())
      << "naive closing must produce a closed module";
}

TEST(EnvGenTest, NaiveStateSpaceGrowsWithDomain) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = env_input();
  if (x > 0)
    send(c, 1);
  else
    send(c, 0);
}

process m = main();
)");
  auto CountRuns = [&](int64_t Domain) {
    Module Naive = naiveCloseModule(*Mod, {Domain});
    SearchOptions Opts;
    Opts.UsePersistentSets = false;
    Opts.UseSleepSets = false;
    Explorer Ex(Naive, Opts);
    return Ex.run().Runs;
  };
  EXPECT_EQ(CountRuns(1), 2u);
  EXPECT_EQ(CountRuns(7), 8u);
  EXPECT_EQ(CountRuns(31), 32u);

  // The paper's transformation is domain-independent: one toss, two runs.
  CloseResult R = closeSource(R"(
chan c[4];

proc main() {
  var x;
  x = env_input();
  if (x > 0)
    send(c, 1);
  else
    send(c, 0);
}

process m = main();
)");
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  SearchOptions Opts;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  Explorer Ex(*R.Closed, Opts);
  EXPECT_EQ(Ex.run().Runs, 2u);
}

TEST(EnvGenTest, NaiveAndTransformedAgreeOnVisibleBehaviors) {
  // For the Figure 3 program (optimal translation), the set of visible
  // traces of the naive closing over domain [0,15] must be a subset of the
  // transformed program's traces (payload-insensitive comparison), and
  // both must reach the same branch alternatives.
  auto Mod = mustCompile(figure3Source());
  Module Naive = naiveCloseModule(*Mod, {15});

  SearchOptions Opts;
  Opts.MaxDepth = 30;
  Explorer NaiveEx(Naive, Opts);
  std::vector<Trace> NaiveTraces = NaiveEx.collectTraces(256);
  ASSERT_FALSE(NaiveTraces.empty());

  CloseResult R = closeSource(figure3Source());
  ASSERT_TRUE(R.ok());
  Explorer ClosedEx(*R.Closed, Opts);
  std::vector<Trace> ClosedTraces = ClosedEx.collectTraces(4096);
  ASSERT_FALSE(ClosedTraces.empty());

  for (const Trace &NT : NaiveTraces) {
    bool Covered = false;
    for (const Trace &CT : ClosedTraces)
      if (traceSubsumes(CT, NT)) {
        Covered = true;
        break;
      }
    EXPECT_TRUE(Covered) << "naive trace not covered:\n" << traceToString(NT);
  }
}

} // namespace
