//===- IncrementalCloseTest.cpp - analysis cache + batch closing tests ------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The incremental-closing contract: with `--analysis-cache DIR`, a re-close
// of an edited corpus recomputes only the touched procedures' analyses, the
// emitted module is byte-identical to an uncached compile, and a damaged
// cache degrades to recomputation — never to wrong output. The batch
// contract: `closer close A B C --jobs N` is byte-identical to sequential
// per-module runs. Library-level tests drive closer::compile(); subprocess
// tests drive the real binary (CLOSER_BIN).
//
//===----------------------------------------------------------------------===//

#include "closing/Pipeline.h"

#include "cfg/CfgPrinter.h"
#include "dataflow/AnalysisCache.h"
#include "support/CorpusGen.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

using namespace closer;
namespace fs = std::filesystem;

namespace {

/// Fresh per-test temp directory, removed on destruction.
struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Tag) {
    Path = fs::temp_directory_path() /
           ("closer_test_" + Tag + "_" + std::to_string(::getpid()));
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

std::string emitted(const CompileResult &R) {
  EXPECT_TRUE(R.ok()) << R.Diags.str();
  return R.M ? emitModuleSource(*R.M) : std::string();
}

CompileResult compileCorpus(const std::string &Src, const std::string &Dir) {
  PipelineOptions Opts;
  Opts.AnalysisCacheDir = Dir;
  return compile(Src, Opts);
}

TEST(AnalysisCacheTest, ColdWarmTweakCounters) {
  TempDir Dir("cache_counters");
  CorpusConfig Config;
  Config.Procs = 6; // Deliberately not a multiple of the env-instantiation
  Config.StmtsPerProc = 24; // stride (regression: the generator looped
  Config.Seed = 3;          // forever on Procs % 4 != 0).
  std::string Src = generateCorpusSource(Config);

  // Cold: everything computed, nothing restored, entries written.
  CompileResult Cold = compileCorpus(Src, Dir.str());
  std::string ColdOut = emitted(Cold);
  EXPECT_TRUE(Cold.Cache.Enabled);
  EXPECT_EQ(Cold.Cache.AliasRestored, 0u);
  EXPECT_EQ(Cold.Cache.DefUseRestored, 0u);
  EXPECT_EQ(Cold.Cache.TaintRestored, 0u);
  EXPECT_GT(Cold.Cache.EntriesSaved, 0u);
  EXPECT_EQ(Cold.Analyses.Alias.Computed, 1u);
  EXPECT_EQ(Cold.Analyses.DefUse.Computed, 6u);
  EXPECT_EQ(Cold.Analyses.EnvTaint.Computed, 1u);

  // Warm: everything restored, nothing recomputed, identical output.
  CompileResult Warm = compileCorpus(Src, Dir.str());
  EXPECT_EQ(emitted(Warm), ColdOut);
  EXPECT_EQ(Warm.Cache.AliasRestored, 1u);
  EXPECT_EQ(Warm.Cache.DefUseRestored, 6u);
  EXPECT_EQ(Warm.Cache.TaintRestored, 1u);
  EXPECT_EQ(Warm.Analyses.Alias.Computed, 0u);
  EXPECT_EQ(Warm.Analyses.DefUse.Computed, 0u);
  EXPECT_EQ(Warm.Analyses.EnvTaint.Computed, 0u);

  // One-procedure edit: only the touched procedure's def-use graph is
  // recomputed (the edit is pure arithmetic, so the alias *result* is
  // unchanged and the other procedures' entries still match). Taint is
  // interprocedural and must recompute.
  Config.TweakProc = 2;
  std::string Tweaked = generateCorpusSource(Config);
  ASSERT_NE(Tweaked, Src);
  CompileResult Incr = compileCorpus(Tweaked, Dir.str());
  std::string IncrOut = emitted(Incr);
  EXPECT_EQ(Incr.Cache.DefUseRestored, 5u);
  EXPECT_EQ(Incr.Analyses.DefUse.Computed, 1u);
  EXPECT_EQ(Incr.Analyses.DefUse.Reused, 5u);
  EXPECT_EQ(Incr.Cache.TaintRestored, 0u);
  EXPECT_EQ(Incr.Analyses.EnvTaint.Computed, 1u);

  // The incremental result must equal a from-scratch compile of the
  // edited source.
  EXPECT_EQ(IncrOut, emitted(compile(Tweaked)));
}

TEST(AnalysisCacheTest, CachedOutputMatchesUncached) {
  TempDir Dir("cache_bytes");
  for (uint64_t Seed : {11u, 12u, 13u}) {
    CorpusConfig Config;
    Config.Procs = 5;
    Config.StmtsPerProc = 20;
    Config.Seed = Seed;
    std::string Src = generateCorpusSource(Config);
    std::string Plain = emitted(compile(Src));
    EXPECT_EQ(emitted(compileCorpus(Src, Dir.str())), Plain) << Seed;
    // Warm path too.
    EXPECT_EQ(emitted(compileCorpus(Src, Dir.str())), Plain) << Seed;
  }
}

TEST(AnalysisCacheTest, CorruptedEntriesRecomputeCleanly) {
  TempDir Dir("cache_corrupt");
  CorpusConfig Config;
  Config.Procs = 4;
  Config.StmtsPerProc = 16;
  std::string Src = generateCorpusSource(Config);
  std::string Want = emitted(compileCorpus(Src, Dir.str()));

  // Truncate or garble every cache entry in turn; each damaged entry must
  // fail deserialization and fall back to computing, with output intact.
  for (const auto &Entry : fs::directory_iterator(Dir.Path)) {
    std::ofstream(Entry.path(), std::ios::trunc) << "garbage v0\n1 2 3";
  }
  CompileResult R = compileCorpus(Src, Dir.str());
  EXPECT_EQ(emitted(R), Want);
  EXPECT_EQ(R.Cache.AliasRestored, 0u);
  EXPECT_EQ(R.Cache.DefUseRestored, 0u);
  EXPECT_EQ(R.Cache.TaintRestored, 0u);
  EXPECT_EQ(R.Analyses.Alias.Computed, 1u);
  EXPECT_EQ(R.Analyses.DefUse.Computed, 4u);
}

TEST(AnalysisCacheTest, UncreatableDirDegradesToDisabled) {
  TempDir Dir("cache_nodir");
  // A path *under a regular file* can never be created.
  std::string File = (Dir.Path / "plain_file").string();
  std::ofstream(File) << "x";
  CorpusConfig Config;
  Config.Procs = 3;
  Config.StmtsPerProc = 12;
  std::string Src = generateCorpusSource(Config);
  CompileResult R = compileCorpus(Src, File + "/sub");
  // Must compile normally, just without cache traffic.
  EXPECT_EQ(emitted(R), emitted(compile(Src)));
  EXPECT_EQ(R.Cache.EntriesSaved, 0u);
  EXPECT_EQ(R.Cache.AliasRestored, 0u);
}

TEST(AnalysisCacheTest, FingerprintsSeparateProcsAndModules) {
  CorpusConfig A;
  A.Procs = 4;
  A.StmtsPerProc = 16;
  CorpusConfig B = A;
  B.TweakProc = 1;
  CompileResult Ra = compile(generateCorpusSource(A));
  CompileResult Rb = compile(generateCorpusSource(B));
  ASSERT_TRUE(Ra.ok() && Rb.ok());
  const Module &Ma = *Ra.Open;
  const Module &Mb = *Rb.Open;
  EXPECT_NE(fingerprintModule(Ma), fingerprintModule(Mb));
  ASSERT_EQ(Ma.Procs.size(), Mb.Procs.size());
  for (size_t P = 0; P != Ma.Procs.size(); ++P) {
    bool Touched = static_cast<int>(P) == B.TweakProc;
    EXPECT_EQ(fingerprintProc(Ma.Procs[P]) != fingerprintProc(Mb.Procs[P]),
              Touched)
        << "proc " << P;
  }
}

//===----------------------------------------------------------------------===//
// Batch mode (subprocess, real binary)
//===----------------------------------------------------------------------===//

std::string runCommand(const std::string &Cmd, int *ExitCode = nullptr) {
  std::FILE *P = ::popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr) << Cmd;
  if (!P)
    return "";
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Status = ::pclose(P);
  if (ExitCode)
    *ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return Out;
}

std::string readAll(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Blanks every volatile field of a close-stats artifact (wall times and
/// the job count) so runs can be compared for semantic identity.
std::string scrubVolatile(std::string Json) {
  for (const char *Key : {"\"wall_seconds\":", "\"jobs\":"}) {
    size_t At = 0;
    while ((At = Json.find(Key, At)) != std::string::npos) {
      size_t Start = At + std::string(Key).size();
      size_t End = Start;
      while (End < Json.size() && Json[End] != ',' && Json[End] != '}' &&
             Json[End] != '\n')
        ++End;
      Json.replace(Start, End - Start, "X");
      At = Start;
    }
  }
  return Json;
}

TEST(BatchCloseTest, JobsOutputByteIdenticalToSequential) {
  TempDir Dir("batch");
  // A randomized corpus of modules with different shapes (different seeds
  // and sizes), some of which share nothing but the pass registry.
  std::vector<std::string> Files;
  for (int I = 0; I != 4; ++I) {
    CorpusConfig Config;
    Config.Procs = 3 + I;
    Config.StmtsPerProc = 10 + 4 * I;
    Config.Seed = 100 + static_cast<uint64_t>(I);
    std::string Path = (Dir.Path / ("m" + std::to_string(I) + ".mc")).string();
    std::ofstream(Path) << generateCorpusSource(Config);
    Files.push_back(Path);
  }
  std::string Bin = CLOSER_BIN;
  std::string AllFiles;
  for (const std::string &F : Files)
    AllFiles += " " + F;

  // Sequential reference: one run per file, concatenated.
  std::string SeqOut, SeqErr;
  for (const std::string &F : Files) {
    std::string ErrFile = (Dir.Path / "seq.err").string();
    SeqOut += runCommand(Bin + " close " + F + " 2>" + ErrFile);
    SeqErr += readAll(ErrFile);
  }

  for (const char *Jobs : {"1", "4"}) {
    std::string ErrFile = (Dir.Path / "batch.err").string();
    std::string StatsFile = (Dir.Path / "batch.json").string();
    int Exit = -1;
    std::string Out =
        runCommand(Bin + " close" + AllFiles + " --jobs " + Jobs +
                       " --stats-json " + StatsFile + " 2>" + ErrFile,
                   &Exit);
    EXPECT_EQ(Exit, 0) << readAll(ErrFile);
    EXPECT_EQ(Out, SeqOut) << "--jobs " << Jobs;
    EXPECT_EQ(readAll(ErrFile), SeqErr) << "--jobs " << Jobs;
    std::string Stats = readAll(StatsFile);
    EXPECT_NE(Stats.find("closer-close-batch-stats-v1"), std::string::npos);
  }

  // The stats artifacts of --jobs 1 and --jobs 4 are identical once wall
  // times and the job count are scrubbed.
  std::string S1 = (Dir.Path / "s1.json").string();
  std::string S4 = (Dir.Path / "s4.json").string();
  runCommand(Bin + " close" + AllFiles + " --jobs 1 --stats-json " + S1 +
             " >/dev/null 2>/dev/null");
  runCommand(Bin + " close" + AllFiles + " --jobs 4 --stats-json " + S4 +
             " >/dev/null 2>/dev/null");
  EXPECT_EQ(scrubVolatile(readAll(S1)), scrubVolatile(readAll(S4)));
}

TEST(BatchCloseTest, BatchSharesAnalysisCacheSafely) {
  TempDir Dir("batch_cache");
  // All workers write to one cache directory concurrently; reruns must
  // restore. The modules are distinct, so entries never collide.
  std::vector<std::string> Files;
  for (int I = 0; I != 3; ++I) {
    CorpusConfig Config;
    Config.Procs = 4;
    Config.StmtsPerProc = 12;
    Config.Seed = 200 + static_cast<uint64_t>(I);
    std::string Path = (Dir.Path / ("c" + std::to_string(I) + ".mc")).string();
    std::ofstream(Path) << generateCorpusSource(Config);
    Files.push_back(Path);
  }
  std::string Bin = CLOSER_BIN;
  std::string AllFiles;
  for (const std::string &F : Files)
    AllFiles += " " + F;
  std::string CacheDir = (Dir.Path / "cache").string();
  std::string Cmd = Bin + " close" + AllFiles + " --jobs 4" +
                    " --analysis-cache " + CacheDir + " 2>/dev/null";
  std::string Cold = runCommand(Cmd);
  std::string Warm = runCommand(Cmd);
  EXPECT_EQ(Cold, Warm);
  EXPECT_FALSE(Cold.empty());
  // The warm run restored at least the per-proc def-use graphs.
  std::string StatsFile = (Dir.Path / "warm.json").string();
  runCommand(Bin + " close" + AllFiles + " --jobs 4 --analysis-cache " +
             CacheDir + " --stats-json " + StatsFile +
             " >/dev/null 2>/dev/null");
  std::string Stats = readAll(StatsFile);
  EXPECT_NE(Stats.find("\"defuse_restored\": 4"), std::string::npos) << Stats;
}

} // namespace
