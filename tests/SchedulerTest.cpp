//===- SchedulerTest.cpp - Chase–Lev deque, parking lot, scheduler ---------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
// Unit and stress tests for the exploration scheduler's three layers:
// the lock-free Chase–Lev deque (owner/thief races, element conservation),
// the wait-node parking lot (exactly-once targeted wakeups, cancel races),
// and the assembled Scheduler (donation trees consumed exactly once,
// drain-based termination, stop delivery). The whole file also runs under
// ThreadSanitizer as part of the Tsan gate (tests/CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "sched/ChaseLev.h"
#include "sched/ParkingLot.h"
#include "sched/Scheduler.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

using namespace closer;
using namespace closer::sched;

namespace {

//===----------------------------------------------------------------------===//
// ChaseLevDeque
//===----------------------------------------------------------------------===//

TEST(ChaseLevDequeTest, OwnerPushPopIsLifo) {
  ChaseLevDeque<int> D;
  int A = 1, B = 2, C = 3;
  D.push(&A);
  D.push(&B);
  D.push(&C);
  EXPECT_EQ(D.pop(), &C);
  EXPECT_EQ(D.pop(), &B);
  EXPECT_EQ(D.pop(), &A);
  EXPECT_EQ(D.pop(), nullptr);
  EXPECT_EQ(D.pop(), nullptr) << "pop on empty must stay empty";
}

TEST(ChaseLevDequeTest, StealTakesOldestFirst) {
  ChaseLevDeque<int> D;
  int A = 1, B = 2;
  D.push(&A);
  D.push(&B);
  int *Out = nullptr;
  ASSERT_EQ(D.steal(Out), ChaseLevDeque<int>::Steal::Stolen);
  EXPECT_EQ(Out, &A) << "thieves take the bottom of the FIFO end";
  EXPECT_EQ(D.pop(), &B);
  EXPECT_EQ(D.steal(Out), ChaseLevDeque<int>::Steal::Empty);
}

TEST(ChaseLevDequeTest, GrowthPreservesContents) {
  // Push far past the initial capacity (2^3 here) so grow() runs several
  // times, then check every element comes back exactly once.
  ChaseLevDeque<int> D(3);
  std::vector<int> Vals(1000);
  std::iota(Vals.begin(), Vals.end(), 0);
  for (int &V : Vals)
    D.push(&V);
  EXPECT_EQ(D.sizeHint(), 1000);
  std::vector<bool> Seen(Vals.size(), false);
  while (int *P = D.pop()) {
    ASSERT_FALSE(Seen[static_cast<size_t>(*P)]);
    Seen[static_cast<size_t>(*P)] = true;
  }
  EXPECT_TRUE(std::all_of(Seen.begin(), Seen.end(), [](bool B) { return B; }));
}

TEST(ChaseLevDequeTest, InterleavedPushPopSteal) {
  // Single-threaded interleaving exercising the one-element owner/thief
  // CAS path: push one, steal it, push two, pop one, steal one.
  ChaseLevDeque<int> D;
  int V[5] = {0, 1, 2, 3, 4};
  int *Out = nullptr;
  D.push(&V[0]);
  ASSERT_EQ(D.steal(Out), ChaseLevDeque<int>::Steal::Stolen);
  EXPECT_EQ(Out, &V[0]);
  EXPECT_EQ(D.pop(), nullptr);
  D.push(&V[1]);
  D.push(&V[2]);
  EXPECT_EQ(D.pop(), &V[2]);
  ASSERT_EQ(D.steal(Out), ChaseLevDeque<int>::Steal::Stolen);
  EXPECT_EQ(Out, &V[1]);
}

/// The core concurrent property: with one owner pushing/popping and many
/// thieves stealing, every element is consumed exactly once and none is
/// lost. Runs under Tsan in the sanitizer gate, where it doubles as the
/// data-race check for the seq_cst formulation.
TEST(ChaseLevDequeTest, ConcurrentStealConservesElements) {
  const int NumThieves = 3;
  const int NumItems = 20000;
  ChaseLevDeque<int> D;
  std::vector<int> Items(NumItems);
  std::iota(Items.begin(), Items.end(), 0);
  std::vector<std::atomic<int>> Taken(NumItems);
  for (auto &T : Taken)
    T.store(0, std::memory_order_relaxed);
  std::atomic<bool> Done{false};

  std::vector<std::thread> Thieves;
  for (int T = 0; T != NumThieves; ++T)
    Thieves.emplace_back([&] {
      int *Out = nullptr;
      while (!Done.load(std::memory_order_acquire)) {
        if (D.steal(Out) == ChaseLevDeque<int>::Steal::Stolen)
          Taken[static_cast<size_t>(*Out)].fetch_add(1,
                                                     std::memory_order_relaxed);
      }
      // Final sweep: the owner may have finished while items remain.
      while (D.steal(Out) != ChaseLevDeque<int>::Steal::Empty)
        if (Out)
          Taken[static_cast<size_t>(*Out)].fetch_add(1,
                                                     std::memory_order_relaxed);
    });

  // Owner: push everything, popping a few in between to exercise the
  // owner-vs-thief race on the last element.
  for (int I = 0; I != NumItems; ++I) {
    D.push(&Items[static_cast<size_t>(I)]);
    if (I % 7 == 0) {
      if (int *P = D.pop())
        Taken[static_cast<size_t>(*P)].fetch_add(1, std::memory_order_relaxed);
    }
  }
  while (int *P = D.pop())
    Taken[static_cast<size_t>(*P)].fetch_add(1, std::memory_order_relaxed);
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  for (int I = 0; I != NumItems; ++I)
    ASSERT_EQ(Taken[static_cast<size_t>(I)].load(), 1)
        << "item " << I << " consumed a wrong number of times";
}

//===----------------------------------------------------------------------===//
// ParkingLot
//===----------------------------------------------------------------------===//

TEST(ParkingLotTest, UnparkOnNobodyParkedReturnsMinusOne) {
  ParkingLot Lot(2);
  EXPECT_EQ(Lot.unparkOne(7), -1);
  EXPECT_EQ(Lot.unparkAll(7), 0);
  EXPECT_EQ(Lot.idleHint(), 0);
}

TEST(ParkingLotTest, CleanCancelConsumesNoToken) {
  ParkingLot Lot(1);
  Lot.beginPark(0);
  EXPECT_EQ(Lot.idleHint(), 1);
  EXPECT_FALSE(Lot.cancelPark(0)) << "nobody unparked us; no token consumed";
  EXPECT_EQ(Lot.idleHint(), 0);
  EXPECT_EQ(Lot.unparkOne(3), -1) << "cancel must remove us from the list";
}

TEST(ParkingLotTest, TargetedWakeupDeliversTokenExactlyOnce) {
  ParkingLot Lot(2);
  std::atomic<int> Got{-100};
  std::thread Sleeper([&] {
    Lot.beginPark(1);
    Got.store(Lot.completePark(1), std::memory_order_release);
  });
  // Wait until the sleeper is actually parked, then wake it.
  while (Lot.idleHint() == 0)
    std::this_thread::yield();
  EXPECT_EQ(Lot.unparkOne(42), 1);
  Sleeper.join();
  EXPECT_EQ(Got.load(), 42);
  EXPECT_EQ(Lot.unparkOne(43), -1) << "the token was delivered exactly once";
}

/// Hammer the cancel-vs-unpark race: a worker repeatedly begins a park and
/// immediately cancels while another thread fires targeted unparks. Every
/// fired token must be consumed exactly once — either by a completePark or
/// by a cancel that reports consumption — and no park cycle may observe a
/// stale wakeup from a previous cycle.
TEST(ParkingLotTest, CancelRaceConsumesEachTokenOnce) {
  const int Cycles = 5000;
  ParkingLot Lot(1);
  std::atomic<uint64_t> Fired{0}, Consumed{0};
  std::atomic<bool> Done{false};

  std::thread Waker([&] {
    while (!Done.load(std::memory_order_acquire))
      if (Lot.unparkOne(1) >= 0)
        Fired.fetch_add(1, std::memory_order_relaxed);
  });

  for (int I = 0; I != Cycles; ++I) {
    Lot.beginPark(0);
    if (I % 2 == 0) {
      if (Lot.cancelPark(0))
        Consumed.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Complete the park; the waker will get us eventually.
      Lot.completePark(0);
      Consumed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Done.store(true, std::memory_order_release);
  Waker.join();
  EXPECT_EQ(Fired.load(), Consumed.load())
      << "every successful unpark must be consumed exactly once";
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

/// Donation tree: each seeded item spawns children via donate() until a
/// depth bound. Every item must be consumed exactly once, across any number
/// of workers, and the run must terminate (drain detection) without a stop.
void runDonationTree(int NumWorkers, int Seeds, int Fanout, int Depth) {
  struct Node {
    int Depth = 0;
    int Id = 0;
  };
  // Total nodes: Seeds * (Fanout^0 + ... + Fanout^Depth) per seed chain.
  Scheduler<Node> S(NumWorkers);
  std::atomic<int> NextId{Seeds};
  int Total = 0;
  {
    int PerSeed = 0, Level = 1;
    for (int D = 0; D <= Depth; ++D) {
      PerSeed += Level;
      Level *= Fanout;
    }
    Total = Seeds * PerSeed;
  }
  std::vector<std::atomic<int>> Consumed(static_cast<size_t>(Total));
  for (auto &C : Consumed)
    C.store(0, std::memory_order_relaxed);

  for (int I = 0; I != Seeds; ++I)
    S.seed(I % NumWorkers, Node{0, I});

  std::vector<std::thread> Threads;
  for (int W = 0; W != NumWorkers; ++W)
    Threads.emplace_back([&, W] {
      Node N;
      while (S.next(W, N)) {
        Consumed[static_cast<size_t>(N.Id)].fetch_add(
            1, std::memory_order_relaxed);
        if (N.Depth < Depth)
          for (int C = 0; C != Fanout; ++C)
            S.donate(W, Node{N.Depth + 1,
                             NextId.fetch_add(1, std::memory_order_relaxed)});
        S.finishItem();
      }
    });
  for (std::thread &T : Threads)
    T.join();

  ASSERT_EQ(NextId.load(), Total) << "id allocation mismatch";
  for (int I = 0; I != Total; ++I)
    ASSERT_EQ(Consumed[static_cast<size_t>(I)].load(), 1)
        << "item " << I << " consumed a wrong number of times";
  EXPECT_TRUE(S.drainRemaining().empty());
}

TEST(SchedulerTest, DonationTreeSingleWorker) { runDonationTree(1, 3, 2, 6); }

TEST(SchedulerTest, DonationTreeTwoWorkers) { runDonationTree(2, 4, 3, 5); }

TEST(SchedulerTest, DonationTreeFourWorkers) { runDonationTree(4, 8, 3, 5); }

TEST(SchedulerTest, EmptySeedDrainsImmediately) {
  Scheduler<int> S(3);
  std::vector<std::thread> Threads;
  std::atomic<int> Claims{0};
  for (int W = 0; W != 3; ++W)
    Threads.emplace_back([&, W] {
      int Item;
      while (S.next(W, Item))
        Claims.fetch_add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Claims.load(), 0);
}

TEST(SchedulerTest, StopWakesAllParkedWorkers) {
  // Workers park on an empty scheduler that is NOT drained (one live item
  // is held, unfinished, by the main thread); requestStop must wake and
  // release all of them.
  Scheduler<int> S(2);
  S.seed(0, 1);
  int Held;
  ASSERT_TRUE(S.next(0, Held)); // Main claims the only item; Live stays 1.

  std::vector<std::thread> Threads;
  std::atomic<int> Exited{0};
  for (int W = 0; W != 2; ++W)
    Threads.emplace_back([&, W] {
      int Item;
      while (S.next(W, Item))
        S.finishItem();
      Exited.fetch_add(1);
    });
  // Let the workers reach their parked state, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  S.requestStop();
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Exited.load(), 2);
  EXPECT_TRUE(S.stopRequested());
}

TEST(SchedulerTest, DonationAfterStopIsDrainedNotLost) {
  // Satellite-6 regression: a donation racing a stop must land somewhere
  // retrievable — the old shared queue silently dropped pushes after its
  // Drained flag flipped. Here: stop first, donate after; the parcel must
  // come back from drainRemaining() so an interrupted run can report the
  // abandoned subtree in its resume prefixes.
  Scheduler<int> S(2);
  S.seed(0, 7);
  int Held;
  ASSERT_TRUE(S.next(0, Held));
  S.requestStop();
  S.donate(0, 99); // Donor had not yet observed the stop.
  S.finishItem();
  int Dummy;
  EXPECT_FALSE(S.next(1, Dummy)) << "stop must win over queued work";
  std::vector<int> Left = S.drainRemaining();
  ASSERT_EQ(Left.size(), 1u);
  EXPECT_EQ(Left[0], 99);
}

TEST(SchedulerTest, WantDonationTracksIdleWorkers) {
  Scheduler<int> S(2);
  EXPECT_FALSE(S.wantDonation()) << "nobody idle, nothing wanted";
  // One worker parks (scheduler empty but not drained: hold a live item).
  S.seed(0, 1);
  int Held;
  ASSERT_TRUE(S.next(0, Held));
  std::thread Sleeper([&] {
    int Item;
    while (S.next(1, Item))
      S.finishItem();
  });
  // Wait for the sleeper to park, then the busy worker should want to
  // donate; after donating, demand is covered.
  while (!S.wantDonation())
    std::this_thread::yield();
  S.donate(0, 2);
  S.finishItem();
  Sleeper.join();
}

} // namespace
