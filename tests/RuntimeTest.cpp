//===- RuntimeTest.cpp - Tests for the concurrent-system runtime ----------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "runtime/System.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace closer;

namespace {

/// Runs a single-path execution (always choosing 0) until no transition is
/// enabled; returns the final classification.
GlobalStateKind runToEnd(System &Sys, ExecResult *Last = nullptr) {
  ZeroChoiceProvider Zero;
  Sys.reset(Zero);
  for (;;) {
    std::vector<int> Enabled = Sys.enabledProcesses();
    if (Enabled.empty())
      return Sys.classify();
    ExecResult R = Sys.executeTransition(Enabled.front(), Zero);
    if (Last)
      *Last = R;
    if (!R.ok())
      return Sys.classify();
  }
}

TEST(RuntimeTest, StraightLineSendsAndTerminates) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var i;
  for (i = 1; i <= 3; i = i + 1)
    send(c, i * 10);
}

process m = main();
)");
  System Sys(*Mod);
  EXPECT_EQ(runToEnd(Sys), GlobalStateKind::Termination);
  ASSERT_EQ(Sys.trace().size(), 3u);
  EXPECT_EQ(Sys.trace()[0].Payload, Value::makeInt(10));
  EXPECT_EQ(Sys.trace()[1].Payload, Value::makeInt(20));
  EXPECT_EQ(Sys.trace()[2].Payload, Value::makeInt(30));
}

TEST(RuntimeTest, FifoChannelOrderAcrossProcesses) {
  auto Mod = mustCompile(R"(
chan c[2];
chan out[8];

proc producer() {
  send(c, 1);
  send(c, 2);
}

proc consumer() {
  var a;
  var b;
  a = recv(c);
  b = recv(c);
  send(out, a * 10 + b);
}

process p = producer();
process q = consumer();
)");
  System Sys(*Mod);
  EXPECT_EQ(runToEnd(Sys), GlobalStateKind::Termination);
  // FIFO: consumer computes 1*10 + 2 = 12.
  const Trace &T = Sys.trace();
  ASSERT_FALSE(T.empty());
  EXPECT_EQ(T.back().Object, "out");
  EXPECT_EQ(T.back().Payload, Value::makeInt(12));
}

TEST(RuntimeTest, SemaphoreDeadlockDetected) {
  auto Mod = mustCompile(R"(
sem a(1);
sem b(1);
chan done[2];

proc left() {
  sem_wait(a);
  sem_wait(b);
  send(done, 1);
  sem_signal(b);
  sem_signal(a);
}

proc right() {
  sem_wait(b);
  sem_wait(a);
  send(done, 2);
  sem_signal(a);
  sem_signal(b);
}

process l = left();
process r = right();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  Sys.reset(Zero);
  // Force the deadlocking interleaving: left takes a, right takes b.
  ASSERT_TRUE(Sys.processEnabled(0));
  Sys.executeTransition(0, Zero); // left: sem_wait(a)
  ASSERT_TRUE(Sys.processEnabled(1));
  Sys.executeTransition(1, Zero); // right: sem_wait(b)
  EXPECT_TRUE(Sys.enabledProcesses().empty());
  EXPECT_EQ(Sys.classify(), GlobalStateKind::Deadlock);
}

TEST(RuntimeTest, SharedVariableReadWrite) {
  auto Mod = mustCompile(R"(
shared sv = 5;
chan out[2];

proc main() {
  var v;
  v = read(sv);
  write(sv, v + 1);
  v = read(sv);
  send(out, v);
}

process m = main();
)");
  System Sys(*Mod);
  EXPECT_EQ(runToEnd(Sys), GlobalStateKind::Termination);
  EXPECT_EQ(Sys.trace().back().Payload, Value::makeInt(6));
}

TEST(RuntimeTest, AssertionViolationReported) {
  auto Mod = mustCompile(R"(
proc main() {
  var x = 3;
  VS_assert(x == 4);
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult Last;
  ZeroChoiceProvider Zero;
  Sys.reset(Zero);
  ASSERT_TRUE(Sys.processEnabled(0));
  ExecResult R = Sys.executeTransition(0, Zero);
  ASSERT_EQ(R.Violations.size(), 1u);
  EXPECT_EQ(R.Violations[0].Process, 0);
}

TEST(RuntimeTest, AssertUnknownPasses) {
  auto Mod = mustCompile(R"(
proc main() {
  VS_assert(unknown);
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  Sys.reset(Zero);
  ASSERT_TRUE(Sys.processEnabled(0));
  ExecResult R = Sys.executeTransition(0, Zero);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Violations.empty());
}

TEST(RuntimeTest, BranchOnUnknownIsARuntimeError) {
  auto Mod = mustCompile(R"(
chan c[2];

proc main() {
  var x = unknown;
  if (x > 0)
    send(c, 1);
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error.Kind, RunErrorKind::UnknownInControl);
}

TEST(RuntimeTest, ProcedureCallsAndReturnValues) {
  auto Mod = mustCompile(R"(
chan out[2];

proc square(n) {
  return n * n;
}

proc main() {
  var r;
  r = square(7);
  send(out, r);
}

process m = main();
)");
  System Sys(*Mod);
  EXPECT_EQ(runToEnd(Sys), GlobalStateKind::Termination);
  EXPECT_EQ(Sys.trace().back().Payload, Value::makeInt(49));
}

TEST(RuntimeTest, RecursionComputesFactorial) {
  auto Mod = mustCompile(R"(
chan out[2];

proc fact(n) {
  var r;
  if (n <= 1)
    return 1;
  r = fact(n - 1);
  return n * r;
}

proc main() {
  var r;
  r = fact(6);
  send(out, r);
}

process m = main();
)");
  System Sys(*Mod);
  EXPECT_EQ(runToEnd(Sys), GlobalStateKind::Termination);
  EXPECT_EQ(Sys.trace().back().Payload, Value::makeInt(720));
}

TEST(RuntimeTest, PointersWriteThroughCalleeFrames) {
  auto Mod = mustCompile(R"(
chan out[2];

proc bump(p) {
  *p = *p + 1;
}

proc main() {
  var x = 41;
  bump(&x);
  send(out, x);
}

process m = main();
)");
  System Sys(*Mod);
  EXPECT_EQ(runToEnd(Sys), GlobalStateKind::Termination);
  EXPECT_EQ(Sys.trace().back().Payload, Value::makeInt(42));
}

TEST(RuntimeTest, ArraysIndexAndBoundsError) {
  auto Mod = mustCompile(R"(
chan out[4];

proc main() {
  var a[3];
  var i;
  for (i = 0; i < 3; i = i + 1)
    a[i] = i * i;
  send(out, a[2]);
  a[5] = 1;
}

process m = main();
)");
  System Sys(*Mod);
  ExecResult Last;
  GlobalStateKind End = runToEnd(Sys, &Last);
  (void)End;
  EXPECT_EQ(Sys.trace().back().Payload, Value::makeInt(4));
  EXPECT_EQ(Last.Error.Kind, RunErrorKind::IndexOutOfBounds);
}

TEST(RuntimeTest, DivergenceDetectedByStepLimit) {
  auto Mod = mustCompile(R"(
proc main() {
  var x = 0;
  while (1)
    x = x + 1;
}

process m = main();
)");
  SystemOptions Opts;
  Opts.InvisibleStepLimit = 500;
  System Sys(*Mod, Opts);
  ZeroChoiceProvider Zero;
  ExecResult R = Sys.reset(Zero);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error.Kind, RunErrorKind::Divergence);
}

TEST(RuntimeTest, HaltParksProcessAsTerminated) {
  auto Mod = mustCompile(R"(
chan c[2];

proc main() {
  send(c, 1);
  halt();
  send(c, 2);
}

process m = main();
)");
  System Sys(*Mod);
  EXPECT_EQ(runToEnd(Sys), GlobalStateKind::Termination);
  EXPECT_EQ(Sys.trace().size(), 1u); // Only the first send executes.
}

TEST(RuntimeTest, GlobalsArePerProcess) {
  auto Mod = mustCompile(R"(
var g = 0;
chan out[4];

proc writer(v) {
  g = v;
  send(out, g);
}

process a = writer(1);
process b = writer(2);
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  Sys.reset(Zero);
  // Run process a fully, then b: each sees its own copy of g.
  while (Sys.processEnabled(0))
    Sys.executeTransition(0, Zero);
  while (Sys.processEnabled(1))
    Sys.executeTransition(1, Zero);
  ASSERT_EQ(Sys.trace().size(), 2u);
  EXPECT_EQ(Sys.trace()[0].Payload, Value::makeInt(1));
  EXPECT_EQ(Sys.trace()[1].Payload, Value::makeInt(2));
}

TEST(RuntimeTest, SwitchDispatch) {
  auto Mod = mustCompile(R"(
chan out[4];

proc classify(v) {
  switch (v) {
  case 0:
    send(out, 'zero');
  case 1:
    send(out, 'one');
  default:
    send(out, 'many');
  }
}

proc main() {
  classify(0);
  classify(1);
  classify(9);
}

process m = main();
)");
  System Sys(*Mod);
  EXPECT_EQ(runToEnd(Sys), GlobalStateKind::Termination);
  ASSERT_EQ(Sys.trace().size(), 3u);
  EXPECT_EQ(Sys.trace()[0].Payload.str(), "'zero'");
  EXPECT_EQ(Sys.trace()[1].Payload.str(), "'one'");
  EXPECT_EQ(Sys.trace()[2].Payload.str(), "'many'");
}

TEST(RuntimeTest, FingerprintDistinguishesAndMatchesStates) {
  auto Mod = mustCompile(R"(
chan c[4];

proc main() {
  var x;
  x = VS_toss(1);
  send(c, x);
  send(c, x);
}

process m = main();
)");
  System Sys(*Mod);
  ZeroChoiceProvider Zero;
  Sys.reset(Zero);
  uint64_t F1 = Sys.fingerprint();
  Sys.reset(Zero);
  uint64_t F2 = Sys.fingerprint();
  EXPECT_EQ(F1, F2) << "reset must reproduce the initial state exactly";

  // A different toss outcome must give a different state.
  class OneProvider : public ChoiceProvider {
  public:
    int64_t choose(ChoiceKind, int64_t Bound) override { return Bound; }
  };
  OneProvider One;
  Sys.reset(One);
  EXPECT_NE(Sys.fingerprint(), F1);
}

} // namespace
