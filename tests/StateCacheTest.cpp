//===- StateCacheTest.cpp - Concurrent state caching ------------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The concurrent fingerprint table and the cached-search contract:
//  * StateCache insert/contains round-trips, exactly-once insertion under
//    concurrency, and the bounded-memory saturation path;
//  * explore() with --state-cache produces the same report set and the
//    same tree-shaped statistics for any job count (the determinism
//    contract of docs/ALGORITHM.md "Concurrent state caching");
//  * a saturated cache degrades to redundant work, never to a wrong or
//    non-terminating search;
//  * checkpointing composes with caching: the cache is consulted only at
//    fresh arrivals, so results are identical for any interval K;
//  * SearchOptions::validate() centralizes the option checks the CLI
//    enforces.
//
//===----------------------------------------------------------------------===//

#include "explorer/Search.h"
#include "explorer/StateCache.h"

#include "RandomProgram.h"
#include "TestUtil.h"
#include "closing/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace closer;

namespace {

#ifndef CLOSER_SOURCE_DIR
#define CLOSER_SOURCE_DIR "."
#endif

std::string readExample(const std::string &Name) {
  std::string Path = std::string(CLOSER_SOURCE_DIR) + "/examples/minic/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

// ---------------------------------------------------------------------------
// StateCache unit tests.
// ---------------------------------------------------------------------------

TEST(StateCacheTest, InsertThenPresentRoundTrip) {
  StateCache Cache(10);
  EXPECT_EQ(Cache.capacity(), 1u << 10);
  EXPECT_EQ(Cache.entries(), 0u);
  for (uint64_t I = 1; I <= 100; ++I) {
    EXPECT_FALSE(Cache.contains(I)) << I;
    EXPECT_EQ(Cache.insert(I), StateCache::Insert::Inserted) << I;
    EXPECT_TRUE(Cache.contains(I)) << I;
    EXPECT_EQ(Cache.insert(I), StateCache::Insert::Present) << I;
  }
  EXPECT_EQ(Cache.entries(), 100u);
}

TEST(StateCacheTest, ZeroFingerprintIsStorable) {
  // 0 marks an empty slot internally; the public interface must still
  // accept a fingerprint that happens to be 0.
  StateCache Cache(StateCache::MinBits);
  EXPECT_FALSE(Cache.contains(0));
  EXPECT_EQ(Cache.insert(0), StateCache::Insert::Inserted);
  EXPECT_TRUE(Cache.contains(0));
  EXPECT_EQ(Cache.insert(0), StateCache::Insert::Present);
}

TEST(StateCacheTest, BitsAreClampedToFloor) {
  StateCache Tiny(1);
  EXPECT_EQ(Tiny.capacity(), uint64_t{1} << StateCache::MinBits);
}

TEST(StateCacheTest, SaturationIsReportedNotWedged) {
  StateCache Cache(StateCache::MinBits); // 16 slots.
  uint64_t Inserted = 0, Saturated = 0;
  for (uint64_t I = 1; I <= 1000; ++I) {
    switch (Cache.insert(I * 0x9e3779b97f4a7c15ull)) {
    case StateCache::Insert::Inserted:
      ++Inserted;
      break;
    case StateCache::Insert::Saturated:
      ++Saturated;
      break;
    case StateCache::Insert::Present:
      FAIL() << "distinct keys reported Present";
    }
  }
  EXPECT_LE(Inserted, Cache.capacity());
  EXPECT_GT(Saturated, 0u);
  EXPECT_EQ(Inserted, Cache.entries());
  // Keys that did land keep answering Present.
  EXPECT_EQ(Cache.insert(0x9e3779b97f4a7c15ull), StateCache::Insert::Present);
}

TEST(StateCacheTest, ConcurrentInsertIsExactlyOnce) {
  // Four threads race the same key set; every key must be Inserted by
  // exactly one of them. This test doubles as the Tsan probe for the
  // lock-free CAS slots.
  constexpr uint64_t Keys = 20000;
  StateCache Cache(16); // 65536 slots: plenty, no saturation.
  std::atomic<uint64_t> TotalInserted{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&Cache, &TotalInserted] {
      uint64_t Mine = 0;
      for (uint64_t I = 1; I <= Keys; ++I)
        if (Cache.insert(I * 0x100000001b3ull) ==
            StateCache::Insert::Inserted)
          ++Mine;
      TotalInserted.fetch_add(Mine, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(TotalInserted.load(), Keys);
  EXPECT_EQ(Cache.entries(), Keys);
}

// ---------------------------------------------------------------------------
// The cached-search determinism contract.
// ---------------------------------------------------------------------------

/// The statistics that are deterministic under caching: with every state
/// expanded exactly once, arrivals and leaf classification depend only on
/// the state graph, not on traversal order or job count.
std::string cachedShape(const SearchStats &S) {
  std::string Out;
  Out += "states=" + std::to_string(S.StatesVisited);
  Out += " tree-transitions=" + std::to_string(S.TreeTransitions);
  Out += " deadlocks=" + std::to_string(S.Deadlocks);
  Out += " terminations=" + std::to_string(S.Terminations);
  Out += " assertion-violations=" + std::to_string(S.AssertionViolations);
  Out += " divergences=" + std::to_string(S.Divergences);
  Out += " runtime-errors=" + std::to_string(S.RuntimeErrors);
  Out += " cache-inserts=" + std::to_string(S.CacheInserts);
  Out += " cache-hits=" + std::to_string(S.CacheHits);
  Out += S.Completed ? " complete" : " stopped";
  return Out;
}

/// Report identity under caching: the erroneous state plus the error
/// details (the representative trace legitimately varies with scheduling).
std::vector<std::string> stateErrorSet(const std::vector<ErrorReport> &Rs) {
  std::vector<std::string> Out;
  for (const ErrorReport &R : Rs)
    Out.push_back(std::to_string(static_cast<int>(R.Kind)) + ":" +
                  std::to_string(R.StateFp) + ":" +
                  std::to_string(static_cast<int>(R.Error.Kind)) + ":" +
                  std::to_string(R.Process));
  std::sort(Out.begin(), Out.end());
  return Out;
}

void expectCachedParallelMatchesSequential(const Module &Mod,
                                           SearchOptions Opts,
                                           const std::string &Label) {
  Opts.MaxReports = 4096;
  Opts.StateCacheBits = 18;

  SearchOptions Seq = Opts;
  Seq.Jobs = 1;
  SearchResult A = explore(Mod, Seq);

  Opts.Jobs = 4;
  SearchResult B = explore(Mod, Opts);

  // Preconditions of the determinism contract: no truncation, no
  // saturation, both runs exhausted the (cached) state graph.
  ASSERT_EQ(A.Stats.DepthLimitHits, 0u) << Label;
  ASSERT_EQ(B.Stats.DepthLimitHits, 0u) << Label;
  ASSERT_EQ(A.Stats.CacheSaturated, 0u) << Label;
  ASSERT_EQ(B.Stats.CacheSaturated, 0u) << Label;
  ASSERT_TRUE(A.Stats.Completed && B.Stats.Completed) << Label;

  EXPECT_EQ(cachedShape(A.Stats), cachedShape(B.Stats)) << Label;
  EXPECT_EQ(stateErrorSet(A.Reports), stateErrorSet(B.Reports)) << Label;
  // The effective options self-describe the normalization explore()
  // applied: sleep sets off, the bit count folded in.
  EXPECT_FALSE(B.Options.UseSleepSets) << Label;
  EXPECT_EQ(B.Options.StateCacheBits, 18u) << Label;
}

TEST(StateCacheTest, CachedParallelMatchesSequentialOnExamples) {
  for (const char *Name :
       {"figure2.mc", "lock_order_bug.mc", "bounded_buffer.mc",
        "resource_manager.mc"}) {
    auto Mod = mustCompile(readExample(Name));
    ASSERT_TRUE(Mod) << Name;
    SearchOptions Opts;
    Opts.MaxDepth = 400; // Cached DFS paths snake; depth must not truncate.
    Opts.CheckpointInterval = 8;
    expectCachedParallelMatchesSequential(*Mod, Opts, Name);
  }
}

TEST(StateCacheTest, CachedParallelMatchesSequentialOnRandomPrograms) {
  for (uint64_t Seed : {7u, 21u, 1003u}) {
    auto Mod = mustCompile(randomOpenProgram(Seed));
    ASSERT_TRUE(Mod) << Seed;
    SearchOptions Opts;
    Opts.MaxDepth = 400;
    Opts.CheckpointInterval = 8;
    expectCachedParallelMatchesSequential(*Mod, Opts,
                                          "seed " + std::to_string(Seed));
  }
}

TEST(StateCacheTest, ParallelCachedRunIsNotForcedSequential) {
  auto Mod = mustCompile(readExample("bounded_buffer.mc"));
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 400;
  Opts.Jobs = 4;
  Opts.StateCacheBits = 18;
  SearchResult R = explore(*Mod, Opts);
  // Seeding pass + one entry per worker: the cached run really ran on the
  // parallel backend (the old --hash behavior fell back to 1 entry).
  EXPECT_EQ(R.Workers.size(), 5u);
  EXPECT_TRUE(R.Stats.Completed);
  EXPECT_GT(R.Stats.CacheInserts, 0u);
}

TEST(StateCacheTest, SaturatedCacheStaysSoundAndTerminates) {
  auto Mod = mustCompile(readExample("lock_order_bug.mc"));
  ASSERT_TRUE(Mod);

  SearchOptions Base;
  Base.MaxDepth = 16;
  Base.MaxReports = 4096;
  SearchResult Uncached = explore(*Mod, Base);
  ASSERT_TRUE(Uncached.Stats.Completed);
  ASSERT_GT(Uncached.Stats.Deadlocks, 0u);

  for (size_t Jobs : {size_t{1}, size_t{4}}) {
    SearchOptions Opts = Base;
    Opts.Jobs = Jobs;
    Opts.StateCacheBits = StateCache::MinBits; // 16 slots: saturates fast.
    SearchResult R = explore(*Mod, Opts);
    std::string Tag = "jobs=" + std::to_string(Jobs);
    // Saturation means redundant re-exploration, never lost coverage: the
    // search still terminates and still finds the deadlock.
    EXPECT_TRUE(R.Stats.Completed) << Tag;
    EXPECT_GT(R.Stats.CacheSaturated, 0u) << Tag;
    EXPECT_GT(R.Stats.Deadlocks, 0u) << Tag;
    EXPECT_FALSE(R.Reports.empty()) << Tag;
  }
}

TEST(StateCacheTest, CheckpointIntervalComposesWithCaching) {
  // The cache is consulted only at fresh arrivals; checkpoint restores and
  // replays pass through visited prefixes without touching it, so every
  // interval K — including pure stateless K=0 — explores the same tree
  // and performs the same cache traffic.
  auto Mod = mustCompile(readExample("bounded_buffer.mc"));
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 400;
  Opts.MaxReports = 4096;
  Opts.StateCacheBits = 18;
  Opts.CheckpointInterval = 0;
  SearchResult Base = explore(*Mod, Opts);
  ASSERT_TRUE(Base.Stats.Completed);
  ASSERT_EQ(Base.Stats.DepthLimitHits, 0u);

  for (size_t K : {size_t{3}, size_t{8}}) {
    SearchOptions Ck = Opts;
    Ck.CheckpointInterval = K;
    SearchResult R = explore(*Mod, Ck);
    std::string Tag = "K=" + std::to_string(K);
    EXPECT_EQ(cachedShape(Base.Stats), cachedShape(R.Stats)) << Tag;
    EXPECT_EQ(stateErrorSet(Base.Reports), stateErrorSet(R.Reports)) << Tag;
    EXPECT_EQ(Base.Stats.Runs, R.Stats.Runs) << Tag;
  }
}

// ---------------------------------------------------------------------------
// SearchOptions::validate().
// ---------------------------------------------------------------------------

size_t errorCount(const std::vector<Diagnostic> &Ds) {
  size_t N = 0;
  for (const Diagnostic &D : Ds)
    N += D.Kind == DiagKind::Error;
  return N;
}

TEST(SearchOptionsValidateTest, DefaultsAreClean) {
  SearchOptions Opts;
  EXPECT_TRUE(Opts.validate().empty());
}

TEST(SearchOptionsValidateTest, RejectsWrappedNegativeValues) {
  // A CLI `--depth -3` arrives as a huge unsigned value; validate names
  // the mistake instead of searching forever.
  SearchOptions Opts;
  Opts.MaxDepth = static_cast<size_t>(-3);
  EXPECT_EQ(errorCount(Opts.validate()), 1u);

  SearchOptions Zero;
  Zero.MaxDepth = 0;
  EXPECT_EQ(errorCount(Zero.validate()), 1u);

  SearchOptions Jobs;
  Jobs.Jobs = 0; // Auto: one worker per hardware thread — valid.
  EXPECT_EQ(errorCount(Jobs.validate()), 0u);
  Jobs.Jobs = static_cast<size_t>(-2); // A CLI `--jobs -2`, wrapped.
  EXPECT_EQ(errorCount(Jobs.validate()), 1u);

  SearchOptions Ckpt;
  Ckpt.CheckpointInterval = static_cast<size_t>(-1);
  EXPECT_EQ(errorCount(Ckpt.validate()), 1u);
}

TEST(SearchOptionsValidateTest, RejectsOutOfRangeCacheBits) {
  SearchOptions Opts;
  Opts.StateCacheBits = StateCache::MaxBits + 1;
  EXPECT_EQ(errorCount(Opts.validate()), 1u);
  Opts.StateCacheBits = StateCache::MinBits - 1;
  EXPECT_EQ(errorCount(Opts.validate()), 1u);
  Opts.StateCacheBits = StateCache::DefaultBits;
  EXPECT_EQ(errorCount(Opts.validate()), 0u);
}

TEST(SearchOptionsValidateTest, WarnsOnSleepSetsUnderCaching) {
  SearchOptions Opts;
  Opts.StateCacheBits = StateCache::DefaultBits;
  ASSERT_TRUE(Opts.UseSleepSets); // Library default.
  std::vector<Diagnostic> Ds = Opts.validate();
  EXPECT_EQ(errorCount(Ds), 0u);
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Kind, DiagKind::Warning);

  Opts.UseSleepSets = false;
  EXPECT_TRUE(Opts.validate().empty());
}

} // namespace
