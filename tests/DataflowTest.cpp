//===- DataflowTest.cpp - Alias, define-use, env-taint tests ----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "dataflow/EnvTaint.h"

#include "dataflow/AliasAnalysis.h"
#include "dataflow/DefUse.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace closer;

namespace {

bool contains(const std::vector<std::string> &Haystack,
              const std::string &Needle) {
  return std::find(Haystack.begin(), Haystack.end(), Needle) !=
         Haystack.end();
}

//===----------------------------------------------------------------------===//
// Alias analysis
//===----------------------------------------------------------------------===//

TEST(AliasTest, DirectAddressOf) {
  auto Mod = mustCompile(R"(
proc f() {
  var x;
  var p;
  p = &x;
  *p = 1;
}
)");
  AliasAnalysis Alias(*Mod);
  auto Pts = Alias.pointsTo(Mod->Procs[0], "p");
  EXPECT_TRUE(contains(Pts, "f::x")) << Pts.size();
}

TEST(AliasTest, PointerCopyPropagates) {
  auto Mod = mustCompile(R"(
proc f() {
  var x;
  var p;
  var q;
  p = &x;
  q = p;
  *q = 1;
}
)");
  AliasAnalysis Alias(*Mod);
  EXPECT_TRUE(contains(Alias.pointsTo(Mod->Procs[0], "q"), "f::x"));
}

TEST(AliasTest, CrossProcedureParameterBinding) {
  auto Mod = mustCompile(R"(
proc callee(ptr) {
  *ptr = 7;
}

proc caller() {
  var local;
  callee(&local);
}
)");
  AliasAnalysis Alias(*Mod);
  const ProcCfg *Callee = Mod->findProc("callee");
  EXPECT_TRUE(contains(Alias.pointsTo(*Callee, "ptr"), "caller::local"));
}

TEST(AliasTest, GlobalsHaveGlobalQualifier) {
  auto Mod = mustCompile(R"(
var g;

proc f() {
  var p;
  p = &g;
  *p = 1;
}
)");
  AliasAnalysis Alias(*Mod);
  EXPECT_TRUE(contains(Alias.pointsTo(Mod->Procs[0], "p"), "::g"));
}

TEST(AliasTest, ArrayElementsCollapseToTheArray) {
  auto Mod = mustCompile(R"(
proc f() {
  var a[4];
  var p;
  p = &a[1];
  *p = 1;
}
)");
  AliasAnalysis Alias(*Mod);
  EXPECT_TRUE(contains(Alias.pointsTo(Mod->Procs[0], "p"), "f::a"));
}

TEST(AliasTest, UnrelatedVariablesDoNotAlias) {
  auto Mod = mustCompile(R"(
proc f() {
  var x;
  var y;
  var p;
  p = &x;
  *p = 1;
  y = 2;
}
)");
  AliasAnalysis Alias(*Mod);
  EXPECT_FALSE(contains(Alias.pointsTo(Mod->Procs[0], "p"), "f::y"));
}

TEST(AliasTest, PointerFreeProcDetected) {
  auto Mod = mustCompile(R"(
proc clean() { var x = 1; }
proc dirty() { var y; var p; p = &y; }
)");
  AliasAnalysis Alias(*Mod);
  EXPECT_FALSE(Alias.procUsesPointers(*Mod->findProc("clean")));
  EXPECT_TRUE(Alias.procUsesPointers(*Mod->findProc("dirty")));
}

//===----------------------------------------------------------------------===//
// Define-use graphs
//===----------------------------------------------------------------------===//

/// Finds the unique node whose listing text mentions all fragments.
NodeId findNode(const ProcCfg &Proc, CfgNodeKind Kind,
                const std::string &VarName) {
  for (size_t I = 0; I != Proc.Nodes.size(); ++I) {
    const CfgNode &N = Proc.Nodes[I];
    if (N.Kind != Kind)
      continue;
    if (N.Target && N.Target->Kind == ExprKind::VarRef &&
        N.Target->Name == VarName)
      return static_cast<NodeId>(I);
  }
  return InvalidNode;
}

TEST(DefUseTest, StraightLineChain) {
  auto Mod = mustCompile(R"(
proc f(x) {
  var a;
  var b;
  var c;
  a = x % 2;
  b = a + 1;
  c = b;
}
)");
  AliasAnalysis Alias(*Mod);
  ProcDataflow DF(*Mod, Mod->Procs[0], Alias);
  const ProcCfg &P = Mod->Procs[0];

  NodeId DefA = findNode(P, CfgNodeKind::Assign, "a");
  NodeId DefB = findNode(P, CfgNodeKind::Assign, "b");
  NodeId DefC = findNode(P, CfgNodeKind::Assign, "c");
  ASSERT_NE(DefA, InvalidNode);
  ASSERT_NE(DefB, InvalidNode);
  ASSERT_NE(DefC, InvalidNode);

  // a's def reaches b's use; b's def reaches c's use.
  auto HasArc = [&](NodeId From, NodeId To, const std::string &V) {
    for (const auto &[T, Var] : DF.duSuccessors(From))
      if (T == To && *Var == V)
        return true;
    return false;
  };
  EXPECT_TRUE(HasArc(DefA, DefB, "a"));
  EXPECT_TRUE(HasArc(DefB, DefC, "b"));
  EXPECT_FALSE(HasArc(DefA, DefC, "a"));

  // Parameter x's entry value reaches its use in a = x % 2.
  EXPECT_TRUE(DF.paramEntryReaches(DefA, "x"));
}

TEST(DefUseTest, StrongDefKillsEntryParam) {
  auto Mod = mustCompile(R"(
chan c[1];

proc f(x) {
  x = 0;
  send(c, x);
}
)");
  AliasAnalysis Alias(*Mod);
  ProcDataflow DF(*Mod, Mod->Procs[0], Alias);
  const ProcCfg &P = Mod->Procs[0];
  // The send node uses x, but only the x = 0 definition reaches it.
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Call) {
      EXPECT_FALSE(DF.paramEntryReaches(static_cast<NodeId>(I), "x"));
    }
}

TEST(DefUseTest, WeakArrayDefDoesNotKill) {
  auto Mod = mustCompile(R"(
chan c[1];

proc f(i) {
  var a[4];
  a[0] = 5;
  a[i] = 6;
  send(c, a[0]);
}
)");
  AliasAnalysis Alias(*Mod);
  ProcDataflow DF(*Mod, Mod->Procs[0], Alias);
  const ProcCfg &P = Mod->Procs[0];
  // Both array writes reach the send's use of a.
  NodeId Send = InvalidNode;
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Call)
      Send = static_cast<NodeId>(I);
  ASSERT_NE(Send, InvalidNode);
  EXPECT_EQ(DF.duPredecessors(Send).size(), 2u);
}

TEST(DefUseTest, BranchMergesBothDefs) {
  auto Mod = mustCompile(R"(
chan c[1];

proc f(x) {
  var v;
  if (x > 0)
    v = 1;
  else
    v = 2;
  send(c, v);
}
)");
  AliasAnalysis Alias(*Mod);
  ProcDataflow DF(*Mod, Mod->Procs[0], Alias);
  const ProcCfg &P = Mod->Procs[0];
  NodeId Send = InvalidNode;
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Call)
      Send = static_cast<NodeId>(I);
  EXPECT_EQ(DF.duPredecessors(Send).size(), 2u);
}

TEST(DefUseTest, DerefUseExpandsToPointees) {
  auto Mod = mustCompile(R"(
chan c[1];

proc f() {
  var x;
  var p;
  x = 3;
  p = &x;
  send(c, *p);
}
)");
  AliasAnalysis Alias(*Mod);
  ProcDataflow DF(*Mod, Mod->Procs[0], Alias);
  const ProcCfg &P = Mod->Procs[0];
  NodeId Send = InvalidNode;
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Call)
      Send = static_cast<NodeId>(I);
  EXPECT_TRUE(DF.uses(Send).count("x"));
  EXPECT_TRUE(DF.uses(Send).count("p"));
}

//===----------------------------------------------------------------------===//
// Environment-taint analysis (Step 2 of Figure 1)
//===----------------------------------------------------------------------===//

TEST(EnvTaintTest, PaperSecondExampleControlOnlyDependence) {
  // The paper's §5 example: "none of the variables a, b, and c are
  // functionally dependent on the environment at the end of the
  // procedure" — but the conditional itself is, so the branch is in N_I
  // while the assignments' defs do not taint b's users via data flow...
  // Note V_I is an over-approximation: b's definitions occur on a
  // control-dependent path but carry untainted values.
  auto Mod = mustCompile(R"(
chan out[1];

proc p(x) {
  var a;
  var b;
  var c;
  a = 0;
  if (x > 0)
    b = a - 1;
  else
    b = a + 1;
  c = b;
  send(out, c);
}

process m = p(env);
)");
  EnvAnalysis Analysis(*Mod);
  const ProcTaint &PT = Analysis.taint().Procs[0];
  const ProcCfg &P = Mod->Procs[0];
  for (size_t I = 0; I != P.Nodes.size(); ++I) {
    const CfgNode &N = P.Nodes[I];
    if (N.Kind == CfgNodeKind::Branch) {
      EXPECT_TRUE(PT.InNI[I]) << "the x > 0 test uses the env value";
      EXPECT_TRUE(PT.VI[I].count("x"));
    }
    if (N.Kind == CfgNodeKind::Assign) {
      // No assignment reads environment data: a, b, c carry constants.
      EXPECT_FALSE(PT.InNI[I]) << "node " << I;
    }
  }
}

TEST(EnvTaintTest, ReassignedParamIsClean) {
  auto Mod = mustCompile(R"(
chan out[1];

proc p(x) {
  x = 5;
  send(out, x);
}

process m = p(env);
)");
  EnvAnalysis Analysis(*Mod);
  const ProcTaint &PT = Analysis.taint().Procs[0];
  for (size_t I = 0; I != Mod->Procs[0].Nodes.size(); ++I)
    EXPECT_FALSE(PT.InNI[I]) << "node " << I;
  // The parameter is still env-bound at entry, so Step 5 removes it.
  EXPECT_TRUE(PT.TaintedParams[0]);
}

TEST(EnvTaintTest, TaintFlowsThroughPointer) {
  auto Mod = mustCompile(R"(
chan out[1];

proc p() {
  var x;
  var q;
  var y;
  q = &x;
  *q = env_input();
  y = x + 1;
  if (y > 0)
    send(out, 1);
  else
    send(out, 2);
}

process m = p();
)");
  EnvAnalysis Analysis(*Mod);
  const ProcTaint &PT = Analysis.taint().Procs[0];
  const ProcCfg &P = Mod->Procs[0];
  bool BranchTainted = false;
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Branch)
      BranchTainted = PT.InNI[I];
  EXPECT_TRUE(BranchTainted);
}

TEST(EnvTaintTest, CalleeWritingCallerVarThroughPointer) {
  auto Mod = mustCompile(R"(
chan out[1];

proc fill(dst) {
  *dst = env_input();
}

proc p() {
  var v;
  fill(&v);
  if (v == 0)
    send(out, 1);
  else
    send(out, 2);
}

process m = p();
)");
  EnvAnalysis Analysis(*Mod);
  EXPECT_TRUE(Analysis.taint().CrossWritten.count("p::v"))
      << "cross-procedure pointer write must taint the caller variable";
  int Idx = Mod->procIndex("p");
  const ProcTaint &PT = Analysis.taint().Procs[Idx];
  const ProcCfg &P = *Mod->findProc("p");
  bool BranchTainted = false;
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Branch)
      BranchTainted = PT.InNI[I];
  EXPECT_TRUE(BranchTainted);
}

TEST(EnvTaintTest, SharedVariableTaint) {
  auto Mod = mustCompile(R"(
shared sv;
chan out[1];

proc writer() {
  var e;
  e = env_input();
  write(sv, e);
}

proc reader() {
  var v;
  v = read(sv);
  if (v > 0)
    send(out, 1);
  else
    send(out, 0);
}

process w = writer();
process r = reader();
)");
  EnvAnalysis Analysis(*Mod);
  EXPECT_TRUE(Analysis.taint().TaintedShared.count("sv"));
  int Idx = Mod->procIndex("reader");
  const ProcCfg &P = *Mod->findProc("reader");
  bool BranchTainted = false;
  for (size_t I = 0; I != P.Nodes.size(); ++I)
    if (P.Nodes[I].Kind == CfgNodeKind::Branch)
      BranchTainted = Analysis.taint().Procs[Idx].InNI[I];
  EXPECT_TRUE(BranchTainted);
}

TEST(EnvTaintTest, GlobalTaintIsFlowInsensitive) {
  auto Mod = mustCompile(R"(
var g;
chan out[1];

proc p() {
  g = env_input();
  g = 0;
  if (g > 0)
    send(out, 1);
  else
    send(out, 0);
}

process m = p();
)");
  EnvAnalysis Analysis(*Mod);
  // Conservative: g stays tainted even after the killing write (documented
  // imprecision; globals are handled flow-insensitively).
  EXPECT_TRUE(Analysis.taint().TaintedGlobals.count("g"));
}

TEST(EnvTaintTest, CoarseModeIsStrictlyLessPrecise) {
  auto Mod = mustCompile(R"(
chan out[1];

proc p(x) {
  var y;
  var z;
  y = x + 1;
  y = 0;
  z = y + 1;
  if (z > 0)
    send(out, 1);
  else
    send(out, 0);
}

process m = p(env);
)");
  EnvAnalysis Precise(*Mod);
  TaintOptions Coarse;
  Coarse.CoarseMode = true;
  EnvAnalysis Blunt(*Mod, Coarse);

  size_t PreciseNI = 0, CoarseNI = 0;
  for (size_t I = 0; I != Mod->Procs[0].Nodes.size(); ++I) {
    PreciseNI += Precise.taint().Procs[0].InNI[I];
    CoarseNI += Blunt.taint().Procs[0].InNI[I];
  }
  // Precise: y = x + 1 is tainted but y = 0 kills the flow, so the branch
  // stays clean. Coarse: once y is ever tainted every use is tainted.
  EXPECT_LT(PreciseNI, CoarseNI);
  EXPECT_EQ(PreciseNI, 1u);
}

TEST(EnvTaintTest, NoEnvMeansNothingTainted) {
  auto Mod = mustCompile(R"(
chan c[1];

proc p(x) {
  var v;
  v = x * 2;
  send(c, v);
}

process m = p(3);
)");
  EnvAnalysis Analysis(*Mod);
  EXPECT_TRUE(Analysis.moduleIsClosed());
  const ProcTaint &PT = Analysis.taint().Procs[0];
  for (size_t I = 0; I != Mod->Procs[0].Nodes.size(); ++I)
    EXPECT_FALSE(PT.InNI[I]);
  EXPECT_FALSE(PT.TaintedParams[0]);
}

} // namespace
