//===- SnapshotTest.cpp - System snapshot/restore and checkpointed search ----===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// The checkpointed search is only sound if a restored System is
// indistinguishable from one that re-executed the same prefix from the
// initial state. These tests pin that down at the runtime level
// (fingerprint and trace equality across frame push/pop and
// communication-object mutation) and at the search level (tree-shaped
// statistics bit-identical between stateless and checkpointed modes, for
// the sequential and the parallel explorer).
//
//===----------------------------------------------------------------------===//

#include "explorer/ParallelSearch.h"
#include "runtime/System.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace closer;

namespace {

#ifndef CLOSER_SOURCE_DIR
#define CLOSER_SOURCE_DIR "."
#endif

std::string readExample(const std::string &Name) {
  std::string Path = std::string(CLOSER_SOURCE_DIR) + "/examples/minic/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// A workload whose execution pushes and pops frames (helper call per
/// iteration) and mutates every communication-object kind (channel deque,
/// semaphore count, shared variable).
const char *snapshotWorkload() {
  return R"(
chan link[3];
sem gate(1);
shared box = 0;

proc doubleup(n) {
  var t = n * 2;
  return t + 1;
}

proc producer() {
  var i;
  var v;
  for (i = 0; i < 3; i = i + 1) {
    v = doubleup(i);
    send(link, v);
    write(box, v);
  }
}

proc consumer() {
  var j;
  var w;
  for (j = 0; j < 3; j = j + 1) {
    sem_wait(gate);
    w = recv(link);
    sem_signal(gate);
  }
}

process a = producer();
process b = consumer();
)";
}

int firstEnabled(const System &Sys) {
  std::vector<int> E = Sys.enabledProcesses();
  return E.empty() ? -1 : E.front();
}

TEST(SnapshotTest, RestoreMidRunEqualsFreshReplayOfThePrefix) {
  auto Mod = mustCompile(snapshotWorkload());
  ASSERT_TRUE(Mod);
  ZeroChoiceProvider Zero;

  // Walk a fixed deterministic schedule, recording a snapshot and the
  // observable state (fingerprint, trace, depth) at every global state.
  System Sys(*Mod, {});
  std::vector<SystemSnapshot> Snaps;
  std::vector<uint64_t> Prints;
  std::vector<std::string> Traces;
  for (;;) {
    Snaps.push_back(Sys.snapshot());
    Prints.push_back(Sys.fingerprint());
    Traces.push_back(traceToString(Sys.trace()));
    int P = firstEnabled(Sys);
    if (P < 0 || Sys.depth() >= 40)
      break;
    ASSERT_TRUE(Sys.executeTransition(P, Zero).ok());
  }
  ASSERT_GE(Snaps.size(), 10u) << "workload too shallow to be interesting";

  // A fresh System re-executing the same schedule passes through exactly
  // the recorded states — the baseline the snapshots must match.
  System Fresh(*Mod, {});
  Fresh.reset(Zero);
  for (size_t D = 0;; ++D) {
    ASSERT_LT(D, Prints.size());
    EXPECT_EQ(Fresh.fingerprint(), Prints[D]) << "depth " << D;
    EXPECT_EQ(traceToString(Fresh.trace()), Traces[D]) << "depth " << D;
    if (D + 1 == Prints.size())
      break;
    ASSERT_TRUE(Fresh.executeTransition(firstEnabled(Fresh), Zero).ok());
  }

  // Restoring any snapshot reproduces the recorded state...
  for (size_t D = 0; D != Snaps.size(); ++D) {
    Sys.restore(Snaps[D]);
    EXPECT_EQ(Sys.depth(), D) << "depth " << D;
    EXPECT_EQ(Sys.fingerprint(), Prints[D]) << "depth " << D;
    EXPECT_EQ(traceToString(Sys.trace()), Traces[D]) << "depth " << D;
  }

  // ...and a restored System resumes exactly like the original run did,
  // across the helper-frame pushes/pops and comm mutations that follow.
  size_t Mid = Snaps.size() / 2;
  Sys.restore(Snaps[Mid]);
  for (size_t D = Mid + 1; D != Snaps.size(); ++D) {
    ASSERT_TRUE(Sys.executeTransition(firstEnabled(Sys), Zero).ok());
    EXPECT_EQ(Sys.fingerprint(), Prints[D]) << "resumed depth " << D;
    EXPECT_EQ(traceToString(Sys.trace()), Traces[D]) << "resumed depth " << D;
  }
}

TEST(SnapshotTest, RestoreUndoesCommObjectMutation) {
  auto Mod = mustCompile(snapshotWorkload());
  ASSERT_TRUE(Mod);
  ZeroChoiceProvider Zero;
  System Sys(*Mod, {});

  SystemSnapshot Initial = Sys.snapshot();
  uint64_t InitialPrint = Sys.fingerprint();

  // Mutate every object kind: sends fill the channel deque, the consumer
  // decrements/increments the semaphore and pops the channel, writes hit
  // the shared variable.
  for (int Step = 0; Step != 6; ++Step) {
    int P = firstEnabled(Sys);
    ASSERT_GE(P, 0);
    ASSERT_TRUE(Sys.executeTransition(P, Zero).ok());
  }
  EXPECT_NE(Sys.fingerprint(), InitialPrint);

  Sys.restore(Initial);
  EXPECT_EQ(Sys.fingerprint(), InitialPrint);
  EXPECT_EQ(Sys.depth(), 0u);
  EXPECT_TRUE(Sys.trace().empty());
}

//===----------------------------------------------------------------------===//
// Search-level equivalence: checkpointed vs stateless
//===----------------------------------------------------------------------===//

/// The statistics that describe the search tree itself. Replay effort
/// (Transitions/TransitionsReplayed/TransitionsRestored) legitimately
/// differs between checkpoint intervals; everything else must not.
std::string treeShape(const SearchStats &S) {
  std::string Out;
  Out += "states=" + std::to_string(S.StatesVisited);
  Out += " tree-transitions=" + std::to_string(S.TreeTransitions);
  Out += " deadlocks=" + std::to_string(S.Deadlocks);
  Out += " terminations=" + std::to_string(S.Terminations);
  Out += " assertion-violations=" + std::to_string(S.AssertionViolations);
  Out += " divergences=" + std::to_string(S.Divergences);
  Out += " runtime-errors=" + std::to_string(S.RuntimeErrors);
  Out += " depth-limit-hits=" + std::to_string(S.DepthLimitHits);
  Out += " sleep-prunes=" + std::to_string(S.SleepSetPrunes);
  Out += " covered=" + std::to_string(S.VisibleOpsCovered);
  Out += S.Completed ? " complete" : " stopped";
  return Out;
}

std::vector<std::string> errorSet(const std::vector<ErrorReport> &Reports) {
  std::vector<std::string> Out;
  for (const ErrorReport &R : Reports)
    Out.push_back(std::to_string(static_cast<int>(R.Kind)) + ":" +
                  replayToString(R.Choices));
  std::sort(Out.begin(), Out.end());
  return Out;
}

void expectCheckpointedMatchesStateless(const Module &Mod,
                                        SearchOptions Opts,
                                        const std::string &Label) {
  Opts.MaxReports = 4096;
  Opts.CheckpointInterval = 0;
  Explorer Stateless(Mod, Opts);
  SearchStats Base = Stateless.run();

  for (size_t K : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
    SearchOptions CkptOpts = Opts;
    CkptOpts.CheckpointInterval = K;
    Explorer Ckpt(Mod, CkptOpts);
    SearchStats S = Ckpt.run();
    std::string Tag = Label + " K=" + std::to_string(K);
    EXPECT_EQ(treeShape(Base), treeShape(S)) << Tag;
    EXPECT_EQ(errorSet(Stateless.reports()), errorSet(Ckpt.reports())) << Tag;
    EXPECT_EQ(Base.Runs, S.Runs) << Tag;
    // Executed-transition accounting stays exact in both modes.
    EXPECT_EQ(S.Transitions, S.TreeTransitions + S.TransitionsReplayed)
        << Tag;
  }

  // And the parallel explorer under checkpointing still partitions the
  // tree exactly.
  SearchOptions Par = Opts;
  Par.Jobs = 4;
  Par.CheckpointInterval = 2;
  SearchResult Parallel = explore(Mod, Par);
  EXPECT_EQ(treeShape(Base), treeShape(Parallel.Stats))
      << Label << " jobs=4 K=2";
  EXPECT_EQ(errorSet(Stateless.reports()), errorSet(Parallel.Reports))
      << Label << " jobs=4 K=2";
}

TEST(SnapshotTest, CheckpointedSearchMatchesStatelessOnExamples) {
  for (const char *Name :
       {"figure2.mc", "lock_order_bug.mc", "bounded_buffer.mc",
        "resource_manager.mc"}) {
    auto Mod = mustCompile(readExample(Name));
    ASSERT_TRUE(Mod) << Name;
    SearchOptions Opts;
    Opts.MaxDepth = 12;
    expectCheckpointedMatchesStateless(*Mod, Opts, Name);
  }
}

TEST(SnapshotTest, CheckpointedSearchMatchesStatelessOnRandomPrograms) {
  for (uint64_t Seed : {7u, 21u, 1003u, 1017u}) {
    auto Mod = mustCompile(randomOpenProgram(Seed));
    ASSERT_TRUE(Mod) << "seed " << Seed;
    SearchOptions Opts;
    Opts.MaxDepth = 10;
    expectCheckpointedMatchesStateless(*Mod, Opts,
                                       "seed " + std::to_string(Seed));
  }
}

TEST(SnapshotTest, CheckpointedSearchMatchesStatelessWithoutReduction) {
  auto Mod = mustCompile(readExample("lock_order_bug.mc"));
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 12;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  expectCheckpointedMatchesStateless(*Mod, Opts, "lock_order_bug --no-por");
}

TEST(SnapshotTest, CheckpointingSkipsReplayWorkOnDeepTrees) {
  // Deep paths are where stateless re-execution hurts: the checkpointed
  // search must visit the identical tree while executing far fewer
  // transitions, with the skipped prefix work showing up as restores.
  auto Mod = mustCompile(readExample("bounded_buffer.mc"));
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 14;
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;

  Explorer Stateless(*Mod, Opts);
  SearchStats Base = Stateless.run();
  EXPECT_EQ(Base.TransitionsRestored, 0u);

  SearchOptions Ckpt = Opts;
  Ckpt.CheckpointInterval = 2;
  Explorer Checkpointed(*Mod, Ckpt);
  SearchStats S = Checkpointed.run();

  EXPECT_EQ(treeShape(Base), treeShape(S));
  EXPECT_GT(S.TransitionsRestored, 0u);
  EXPECT_LT(S.TransitionsReplayed, Base.TransitionsReplayed);
  EXPECT_LT(S.Transitions, Base.Transitions);
  // Restores + replays together still cover every prefix transition the
  // stateless search had to re-execute.
  EXPECT_EQ(S.TransitionsReplayed + S.TransitionsRestored,
            Base.TransitionsReplayed);
}

TEST(SnapshotTest, ExplorerRunIsRepeatableWithCheckpointing) {
  // run() must clear checkpoint state between invocations: a second run on
  // the same Explorer instance sees the same tree.
  auto Mod = mustCompile(readExample("figure2.mc"));
  ASSERT_TRUE(Mod);
  SearchOptions Opts;
  Opts.MaxDepth = 10;
  Opts.CheckpointInterval = 3;
  Explorer Ex(*Mod, Opts);
  SearchStats First = Ex.run();
  SearchStats Second = Ex.run();
  EXPECT_EQ(treeShape(First), treeShape(Second));
  EXPECT_EQ(First.Transitions, Second.Transitions);
  EXPECT_EQ(First.TransitionsRestored, Second.TransitionsRestored);
}

} // namespace
