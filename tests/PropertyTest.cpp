//===- PropertyTest.cpp - Property-based checks of Theorems 6/7 ------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// For a sweep of randomly generated open programs S:
//
//  * Lemma 5    — close(S) contains no environment interface;
//  * stability  — close(close(S)) == close(S);
//  * Theorem 6  — every visible trace of S x E_S (executed as the naive
//                 closing over a finite domain) is subsumed by a visible
//                 trace of close(S);
//  * Theorem 7  — deadlocks of S x E_S appear in close(S), and violations
//                 of preserved assertions are preserved;
//  * size bound — the transformation never enlarges the CFG beyond the
//                 inserted toss nodes.
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgPrinter.h"
#include "closing/Pipeline.h"
#include "envgen/NaiveClose.h"
#include "explorer/Search.h"
#include "RandomProgram.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace closer;

namespace {

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

SearchOptions boundedSearch(size_t Depth, uint64_t MaxRuns) {
  SearchOptions Opts;
  Opts.MaxDepth = Depth;
  Opts.MaxRuns = MaxRuns;
  Opts.MaxReports = 256;
  // Keep reductions off: the theorems quantify over *all* behaviors.
  Opts.UsePersistentSets = false;
  Opts.UseSleepSets = false;
  return Opts;
}

TEST_P(PropertyTest, ClosedModuleHasNoEnvironmentInterface) {
  CloseResult R = closeSource(randomOpenProgram(GetParam()));
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EnvAnalysis Analysis(*R.Closed);
  EXPECT_TRUE(Analysis.moduleIsClosed())
      << printModule(*R.Closed);
}

TEST_P(PropertyTest, ClosingIsStable) {
  CloseResult R = closeSource(randomOpenProgram(GetParam()));
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  Module Again = closeModule(*R.Closed);
  EXPECT_EQ(printModule(Again), printModule(*R.Closed));
}

TEST_P(PropertyTest, TransformationNeverGrowsBeyondTossNodes) {
  CloseResult R = closeSource(randomOpenProgram(GetParam()));
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  EXPECT_LE(R.Stats.NodesAfter,
            R.Stats.NodesBefore + R.Stats.TossNodesInserted);
}

TEST_P(PropertyTest, TraceInclusionTheorem6) {
  std::string Src = randomOpenProgram(GetParam());
  DiagnosticEngine Diags;
  auto Open = compileAndVerify(Src, Diags);
  ASSERT_TRUE(Open) << Diags.str() << "\n" << Src;

  // S x E_S over the domain {0,1,2}.
  Module Naive = naiveCloseModule(*Open, {2});
  Explorer NaiveEx(Naive, boundedSearch(8, 300));
  std::vector<Trace> NaiveTraces = NaiveEx.collectTraces(64);

  CloseResult R = closeSource(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  Explorer ClosedEx(*R.Closed, boundedSearch(8, 60000));
  std::vector<Trace> ClosedTraces = ClosedEx.collectTraces(30000);
  if (!ClosedEx.stats().Completed)
    GTEST_SKIP() << "closed-side search budget exhausted for this seed";

  for (const Trace &NT : NaiveTraces) {
    bool Covered = false;
    for (const Trace &CT : ClosedTraces)
      if (traceSubsumes(CT, NT)) {
        Covered = true;
        break;
      }
    ASSERT_TRUE(Covered) << "uncovered open-system trace (seed "
                         << GetParam() << "):\n"
                         << traceToString(NT) << "\nprogram:\n"
                         << Src;
  }
}

TEST_P(PropertyTest, DeadlockPreservationTheorem7) {
  std::string Src = randomOpenProgram(GetParam());
  DiagnosticEngine Diags;
  auto Open = compileAndVerify(Src, Diags);
  ASSERT_TRUE(Open) << Diags.str();

  Module Naive = naiveCloseModule(*Open, {2});
  Explorer NaiveEx(Naive, boundedSearch(10, 500));
  SearchStats NaiveStats = NaiveEx.run();
  if (NaiveStats.Deadlocks == 0)
    return; // Nothing to preserve for this seed.

  CloseResult R = closeSource(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  Explorer ClosedEx(*R.Closed, boundedSearch(10, 100000));
  SearchStats ClosedStats = ClosedEx.run();
  if (!ClosedStats.Completed)
    GTEST_SKIP() << "closed-side search budget exhausted for this seed";
  EXPECT_GE(ClosedStats.Deadlocks, 1u)
      << "open system deadlocks but closed system does not (seed "
      << GetParam() << "):\n"
      << Src;
}

TEST_P(PropertyTest, AssertionPreservationTheorem7) {
  std::string Src = randomOpenProgram(GetParam());
  DiagnosticEngine Diags;
  auto Open = compileAndVerify(Src, Diags);
  ASSERT_TRUE(Open) << Diags.str();

  CloseResult R = closeSource(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  // The theorem only covers assertions the transformation preserved; skip
  // seeds where some assertion payload was eliminated.
  for (const ProcCfg &Proc : R.Closed->Procs)
    for (const CfgNode &Node : Proc.Nodes)
      if (Node.Kind == CfgNodeKind::Call &&
          Node.Builtin == BuiltinKind::VsAssert &&
          Node.Args[0]->Kind == ExprKind::Unknown)
        return;

  Module Naive = naiveCloseModule(*Open, {2});
  Explorer NaiveEx(Naive, boundedSearch(10, 500));
  SearchStats NaiveStats = NaiveEx.run();
  if (NaiveStats.AssertionViolations == 0)
    return;

  Explorer ClosedEx(*R.Closed, boundedSearch(10, 100000));
  SearchStats ClosedStats = ClosedEx.run();
  if (!ClosedStats.Completed)
    GTEST_SKIP() << "closed-side search budget exhausted for this seed";
  EXPECT_GE(ClosedStats.AssertionViolations, 1u)
      << "assertion violation lost by closing (seed " << GetParam()
      << "):\n"
      << Src;
}

TEST_P(PropertyTest, EmittedClosedSourceRoundTrips) {
  CloseResult R = closeSource(randomOpenProgram(GetParam()));
  ASSERT_TRUE(R.ok()) << R.Diags.str();

  std::string Emitted = emitModuleSource(*R.Closed);
  DiagnosticEngine Diags;
  auto Reparsed = compileAndVerify(Emitted, Diags);
  ASSERT_TRUE(Reparsed) << Diags.str() << "\nemitted source:\n" << Emitted;

  // The reparsed program must show the same visible behaviors.
  Explorer ExA(*R.Closed, boundedSearch(6, 4000));
  Explorer ExB(*Reparsed, boundedSearch(6, 4000));
  std::vector<Trace> TracesA = ExA.collectTraces(2000);
  std::vector<Trace> TracesB = ExB.collectTraces(2000);

  auto Key = [](const Trace &T) { return traceToString(T); };
  std::set<std::string> SetA, SetB;
  for (const Trace &T : TracesA)
    SetA.insert(Key(T));
  for (const Trace &T : TracesB)
    SetB.insert(Key(T));
  EXPECT_EQ(SetA, SetB) << "emitted source:\n" << Emitted;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(1, 49));
// A second topology: three processes, deeper nesting, no helper (see
// randomOpenProgram).
INSTANTIATE_TEST_SUITE_P(WideSeeds, PropertyTest,
                         ::testing::Range<uint64_t>(1000, 1017));

//===----------------------------------------------------------------------===//
// Lemma 1 spot check: perturbing the environment input never changes a
// variable outside V_I at its use, on the Figure 3 program.
//===----------------------------------------------------------------------===//

TEST(TaintSoundnessTest, EnvPerturbationOnlyChangesTaintedVars) {
  // Execute figure 3's q with x = 5 and x = 9; the visible payloads (cnt)
  // must be identical because cnt is untainted — only the branch choices
  // (even/odd channel) differ.
  auto Mod = mustCompile(figure3Source());
  Module Naive5 = naiveCloseModule(*Mod, {5});
  Module Naive9 = naiveCloseModule(*Mod, {9});

  class MaxProvider : public ChoiceProvider {
  public:
    int64_t choose(ChoiceKind, int64_t Bound) override { return Bound; }
  };

  auto PayloadsOf = [](Module &M) {
    System Sys(M);
    MaxProvider Max;
    Sys.reset(Max);
    while (!Sys.enabledProcesses().empty())
      Sys.executeTransition(Sys.enabledProcesses().front(), Max);
    std::vector<int64_t> Payloads;
    for (const VisibleEvent &E : Sys.trace())
      Payloads.push_back(E.Payload.asInt());
    return Payloads;
  };

  EXPECT_EQ(PayloadsOf(Naive5), PayloadsOf(Naive9));
}

} // namespace
