//===- SupportTest.cpp - Diagnostics / RNG / SourceLoc tests -----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/Random.h"
#include "support/SourceLoc.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

using namespace closer;

namespace {

TEST(SourceLocTest, ValidityAndRendering) {
  SourceLoc Unknown;
  EXPECT_FALSE(Unknown.isValid());
  EXPECT_EQ(Unknown.str(), "<unknown>");

  SourceLoc Loc(12, 34);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "12:34");
  EXPECT_EQ(Loc, SourceLoc(12, 34));
  EXPECT_FALSE(Loc == SourceLoc(12, 35));
}

TEST(DiagnosticsTest, CountsAndSeverities) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 1), "be careful");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 3), "went wrong");
  Diags.note(SourceLoc(), "context here");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);

  std::string Text = Diags.str();
  EXPECT_NE(Text.find("warning: 1:1: be careful"), std::string::npos);
  EXPECT_NE(Text.find("error: 2:3: went wrong"), std::string::npos);
  EXPECT_NE(Text.find("note: context here"), std::string::npos);

  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool Diverged = false;
  for (int I = 0; I != 10; ++I)
    Diverged |= A.next() != B.next();
  EXPECT_TRUE(Diverged);
}

TEST(RngTest, ZeroSeedIsRemapped) {
  Rng Z(0);
  EXPECT_NE(Z.next(), 0u);
}

TEST(RngTest, BelowAndRangeStayInBounds) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.below(10);
    EXPECT_LT(V, 10u);
    int64_t W = R.range(-3, 3);
    EXPECT_GE(W, -3);
    EXPECT_LE(W, 3);
    Seen.insert(W);
  }
  // All seven values of the range appear over 1000 draws.
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, ChanceIsroughlyCalibrated) {
  Rng R(11);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.chance(1, 4);
  EXPECT_GT(Hits, 2000);
  EXPECT_LT(Hits, 3000);
}

TEST(ArenaTest, BumpAllocationAndGeometricGrowth) {
  support::Arena A(64);
  EXPECT_EQ(A.bytesFromUpstream(), 0u);
  void *P1 = A.allocate(16, 8);
  ASSERT_NE(P1, nullptr);
  uint64_t AfterFirst = A.bytesFromUpstream();
  EXPECT_GE(AfterFirst, 64u);
  // Fits in the first block: no new upstream traffic.
  void *P2 = A.allocate(16, 8);
  EXPECT_NE(P1, P2);
  EXPECT_EQ(A.bytesFromUpstream(), AfterFirst);
  // Outgrows it: a new (geometrically larger) block is fetched.
  A.allocate(512, 8);
  EXPECT_GT(A.bytesFromUpstream(), AfterFirst);
  EXPECT_GE(A.blocksFromUpstream(), 2u);
}

TEST(ArenaTest, AlignmentIsHonored) {
  support::Arena A(128);
  A.allocate(1, 1); // Skew the bump pointer.
  for (size_t Align : {size_t{2}, size_t{8}, size_t{16}, size_t{64}}) {
    void *P = A.allocate(8, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
        << "alignment " << Align;
  }
}

TEST(ArenaTest, ResetReusesBlocksWithoutUpstreamTraffic) {
  support::Arena A(256);
  for (int I = 0; I != 8; ++I)
    A.allocate(64, 8);
  uint64_t Peak = A.bytesFromUpstream();
  // Steady state: reset + same workload touches the heap zero times.
  for (int Round = 0; Round != 10; ++Round) {
    A.reset();
    for (int I = 0; I != 8; ++I)
      A.allocate(64, 8);
    EXPECT_EQ(A.bytesFromUpstream(), Peak) << "round " << Round;
  }
}

TEST(ArenaTest, PmrVectorRunsOnArena) {
  support::Arena A(4096);
  std::pmr::vector<uint64_t> V(&A);
  V.resize(100, 7);
  EXPECT_GT(A.bytesFromUpstream(), 0u);
  EXPECT_EQ(V[99], 7u);
  // Copy construction does NOT propagate the arena resource: a persistent
  // copy of arena scratch lands on the default (heap) resource — the
  // property Footprints.h's persistent-copy pattern depends on.
  std::pmr::vector<uint64_t> Copy(V);
  EXPECT_EQ(Copy.get_allocator().resource(),
            std::pmr::get_default_resource());
}

TEST(ObjectPoolTest, RecyclesAndCountsFresh) {
  support::ObjectPool<std::string> Pool;
  EXPECT_EQ(Pool.fresh(), 0u);
  std::string S = Pool.acquire();
  EXPECT_EQ(Pool.fresh(), 1u);
  S = "payload";
  Pool.release(std::move(S));
  EXPECT_EQ(Pool.idle(), 1u);
  // A pool hit: no fresh construction.
  std::string T = Pool.acquire();
  EXPECT_EQ(Pool.fresh(), 1u);
  EXPECT_EQ(Pool.idle(), 0u);
}

TEST(VectorPoolTest, AcquireClearsButKeepsCapacity) {
  support::VectorPool<int> Pool;
  std::vector<int> V = Pool.acquire();
  EXPECT_EQ(Pool.fresh(), 1u);
  V.assign(1000, 42);
  Pool.release(std::move(V));
  std::vector<int> W = Pool.acquire();
  EXPECT_EQ(Pool.fresh(), 1u) << "recycled, not fresh";
  EXPECT_TRUE(W.empty()) << "acquire must clear recycled contents";
  EXPECT_GE(W.capacity(), 1000u) << "capacity is the whole point";
}

TEST(VectorPoolTest, SteadyStateFreshCountIsHighWaterBounded) {
  // The property the bench's steady-state-allocation gate builds on:
  // fresh() tracks the maximum number of simultaneously-live vectors,
  // not the total acquire() traffic.
  support::VectorPool<int> Pool;
  for (int Round = 0; Round != 100; ++Round) {
    std::vector<std::vector<int>> Live;
    for (int I = 0; I != 5; ++I) {
      Live.push_back(Pool.acquire());
      Live.back().push_back(Round + I);
    }
    for (std::vector<int> &V : Live)
      Pool.release(std::move(V));
  }
  EXPECT_EQ(Pool.fresh(), 5u);
}

} // namespace
