//===- SupportTest.cpp - Diagnostics / RNG / SourceLoc tests -----------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Random.h"
#include "support/SourceLoc.h"

#include <gtest/gtest.h>

#include <set>

using namespace closer;

namespace {

TEST(SourceLocTest, ValidityAndRendering) {
  SourceLoc Unknown;
  EXPECT_FALSE(Unknown.isValid());
  EXPECT_EQ(Unknown.str(), "<unknown>");

  SourceLoc Loc(12, 34);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "12:34");
  EXPECT_EQ(Loc, SourceLoc(12, 34));
  EXPECT_FALSE(Loc == SourceLoc(12, 35));
}

TEST(DiagnosticsTest, CountsAndSeverities) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 1), "be careful");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 3), "went wrong");
  Diags.note(SourceLoc(), "context here");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);

  std::string Text = Diags.str();
  EXPECT_NE(Text.find("warning: 1:1: be careful"), std::string::npos);
  EXPECT_NE(Text.find("error: 2:3: went wrong"), std::string::npos);
  EXPECT_NE(Text.find("note: context here"), std::string::npos);

  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool Diverged = false;
  for (int I = 0; I != 10; ++I)
    Diverged |= A.next() != B.next();
  EXPECT_TRUE(Diverged);
}

TEST(RngTest, ZeroSeedIsRemapped) {
  Rng Z(0);
  EXPECT_NE(Z.next(), 0u);
}

TEST(RngTest, BelowAndRangeStayInBounds) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.below(10);
    EXPECT_LT(V, 10u);
    int64_t W = R.range(-3, 3);
    EXPECT_GE(W, -3);
    EXPECT_LE(W, 3);
    Seen.insert(W);
  }
  // All seven values of the range appear over 1000 draws.
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, ChanceIsroughlyCalibrated) {
  Rng R(11);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.chance(1, 4);
  EXPECT_GT(Hits, 2000);
  EXPECT_LT(Hits, 3000);
}

} // namespace
