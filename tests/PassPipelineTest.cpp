//===- PassPipelineTest.cpp - Pass-manager pipeline tests -------------------===//
//
// Part of the closer project: a reproduction of "Automatically Closing Open
// Reactive Programs" (Colby, Godefroid, Jagadeesan, PLDI 1998).
//
//===----------------------------------------------------------------------===//
//
// Covers closer::compile() and the pass infrastructure beneath it: the
// refactor must be behavior-preserving (default pipeline == the historical
// closeSource), the analysis cache counters must show exactly-once
// computation on a cold close and genuine reuse across partition -> close,
// --verify-each must name the offending pass, and closing must be a
// fixpoint (re-closing an already-closed program changes nothing).
//
//===----------------------------------------------------------------------===//

#include "closing/PassManager.h"
#include "closing/Pipeline.h"

#include "cfg/CfgPrinter.h"

#include "RandomProgram.h"
#include "TestUtil.h"

#include <fstream>
#include <sstream>

#ifndef CLOSER_SOURCE_DIR
#define CLOSER_SOURCE_DIR "."
#endif

namespace closer {
namespace {

const char *const ExampleNames[] = {"bounded_buffer.mc", "figure2.mc",
                                    "lock_order_bug.mc",
                                    "resource_manager.mc"};

std::string readExample(const std::string &Name) {
  std::string Path =
      std::string(CLOSER_SOURCE_DIR) + "/examples/minic/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

size_t countTossNodes(const Module &Mod) {
  size_t N = 0;
  for (const ProcCfg &Proc : Mod.Procs)
    for (const CfgNode &Node : Proc.Nodes)
      if (Node.Kind == CfgNodeKind::TossBranch)
        ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Behavior preservation
//===----------------------------------------------------------------------===//

TEST(PassPipeline, DefaultCompileMatchesCloseSource) {
  for (const char *Name : ExampleNames) {
    std::string Source = readExample(Name);
    CompileResult CR = compile(Source);
    CloseResult Legacy = closeSource(Source);
    ASSERT_TRUE(CR.ok()) << Name << ": " << CR.Diags.str();
    ASSERT_TRUE(Legacy.ok()) << Name << ": " << Legacy.Diags.str();
    EXPECT_EQ(emitModuleSource(*CR.M), emitModuleSource(*Legacy.Closed))
        << Name;
    EXPECT_EQ(CR.Closing.NodesAfter, Legacy.Stats.NodesAfter) << Name;
    EXPECT_EQ(CR.Closing.TossNodesInserted, Legacy.Stats.TossNodesInserted)
        << Name;
  }
}

TEST(PassPipeline, DefaultPipelineIsExpanded) {
  CompileResult R = compile(figure2Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  const std::vector<std::string> Expected = {"parse", "sema", "lower",
                                             "verify", "close"};
  EXPECT_EQ(R.EffectiveOptions.Passes, Expected);
  ASSERT_EQ(R.Passes.size(), Expected.size());
  for (size_t I = 0; I != Expected.size(); ++I) {
    EXPECT_EQ(R.Passes[I].Name, Expected[I]);
    EXPECT_GE(R.Passes[I].WallSeconds, 0.0);
  }
  // The pre-close module is retained alongside the closed one.
  ASSERT_TRUE(R.Open != nullptr);
  EXPECT_GT(countTossNodes(*R.M) + R.Closing.NodesEliminated, 0u);
}

TEST(PassPipeline, CloseSourceStillReportsOpenModule) {
  CloseResult R = closeSource(figure2Source());
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  ASSERT_TRUE(R.Open != nullptr);
  ASSERT_TRUE(R.Closed != nullptr);
  EXPECT_GT(R.Stats.NodesBefore, 0u);
  // The open module still has its env interface; the closed one does not.
  EXPECT_GT(R.Stats.EnvCallsRemoved + R.Stats.ParamsRemoved, 0u);
}

//===----------------------------------------------------------------------===//
// Analysis cache counters
//===----------------------------------------------------------------------===//

TEST(PassPipeline, ColdCloseComputesEachAnalysisOnce) {
  for (const char *Name : ExampleNames) {
    CompileResult R = compile(readExample(Name));
    ASSERT_TRUE(R.ok()) << Name << ": " << R.Diags.str();
    ASSERT_TRUE(R.Open != nullptr) << Name;
    const AnalysisStats &S = R.Analyses;
    EXPECT_EQ(S.Alias.Computed, 1u) << Name;
    EXPECT_EQ(S.DefUse.Computed, R.Open->Procs.size()) << Name;
    EXPECT_EQ(S.DefUse.Reused, 0u) << Name;
    EXPECT_EQ(S.EnvTaint.Computed, 1u) << Name;
    EXPECT_EQ(S.EnvTaint.Reused, 0u) << Name;
  }
}

TEST(PassPipeline, PartitionThenCloseReusesCachedAnalyses) {
  PipelineOptions Opts;
  Opts.Passes = {"partition", "close"};
  CompileResult R = compile(readExample("resource_manager.mc"), Opts);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  // Premise: this example actually has partitionable inputs.
  ASSERT_GT(R.Partition.InputsPartitioned + R.Partition.ParamsPartitioned,
            0u);
  const AnalysisStats &S = R.Analyses;
  // Partition preserves aliasing, so the close pass reuses the alias
  // analysis computed for partitioning...
  EXPECT_EQ(S.Alias.Computed, 1u);
  EXPECT_GT(S.Alias.Reused, 0u);
  // ...and the define-use graphs of every procedure partition left alone.
  EXPECT_GT(S.DefUse.Reused, 0u);
}

TEST(PassPipeline, InterfaceAfterCloseReusesTaint) {
  PipelineOptions Opts;
  Opts.Passes = {"interface"};
  CompileResult R = compile(figure2Source(), Opts);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  ASSERT_TRUE(R.Interface.has_value());
  EXPECT_FALSE(R.Interface->isClosed()); // figure2 is open.
  EXPECT_EQ(R.Analyses.EnvTaint.Computed, 1u);

  // Asking for the interface twice computes the taint fixpoint once.
  Opts.Passes = {"interface", "interface"};
  CompileResult R2 = compile(figure2Source(), Opts);
  ASSERT_TRUE(R2.ok()) << R2.Diags.str();
  EXPECT_EQ(R2.Analyses.EnvTaint.Computed, 1u);
  EXPECT_GT(R2.Analyses.EnvTaint.Reused, 0u);
}

//===----------------------------------------------------------------------===//
// Pipeline composition and validation
//===----------------------------------------------------------------------===//

TEST(PassPipeline, PartitionPipelineMatchesTwoStepComposition) {
  for (const char *Name : ExampleNames) {
    std::string Source = readExample(Name);

    // The historical two-step composition over standalone entry points.
    DiagnosticEngine Diags;
    std::unique_ptr<Module> Open = compileAndVerify(Source, Diags);
    ASSERT_TRUE(Open != nullptr) << Name << ": " << Diags.str();
    Module Simplified = partitionInputs(*Open);
    Module Closed = closeModule(Simplified);

    PipelineOptions Opts;
    Opts.Passes = {"partition", "close"};
    CompileResult R = compile(Source, Opts);
    ASSERT_TRUE(R.ok()) << Name << ": " << R.Diags.str();
    EXPECT_EQ(emitModuleSource(*R.M), emitModuleSource(Closed)) << Name;
  }
}

TEST(PassPipeline, UnknownPassIsRejected) {
  PipelineOptions Opts;
  Opts.Passes = {"bogus"};
  CompileResult R = compile(figure2Source(), Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.str().find("unknown pass 'bogus'"), std::string::npos)
      << R.Diags.str();
  EXPECT_TRUE(R.Passes.empty()); // Rejected before anything ran.
}

TEST(PassPipeline, PrintAfterNamingAbsentPassIsRejected) {
  PipelineOptions Opts;
  Opts.PrintAfter = "partition"; // Default pipeline has no partition pass.
  CompileResult R = compile(figure2Source(), Opts);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Diags.str().find("not in the pipeline"), std::string::npos)
      << R.Diags.str();
}

TEST(PassPipeline, PrintAfterCapturesModuleSource) {
  PipelineOptions Opts;
  Opts.PrintAfter = "close";
  CompileResult R = compile(figure2Source(), Opts);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  ASSERT_EQ(R.Printed.size(), 1u);
  EXPECT_EQ(R.Printed[0].first, "close");
  EXPECT_EQ(R.Printed[0].second, emitModuleSource(*R.M));
}

TEST(PassPipeline, VerifyEachAcceptsTheRealPipeline) {
  PipelineOptions Opts;
  Opts.Passes = {"partition", "close", "dedup-toss"};
  Opts.VerifyEach = true;
  for (const char *Name : ExampleNames) {
    CompileResult R = compile(readExample(Name), Opts);
    EXPECT_TRUE(R.ok()) << Name << ": " << R.Diags.str();
  }
}

namespace {
/// A deliberately broken pass: points an arc of the first procedure at a
/// nonexistent node, which the CFG verifier must catch.
class CorruptingPass : public Pass {
public:
  const char *name() const override { return "corrupt-cfg"; }
  bool run(CompilationContext &Ctx) override {
    for (ProcCfg &Proc : Ctx.M->Procs)
      for (CfgNode &Node : Proc.Nodes)
        if (!Node.Arcs.empty()) {
          Node.Arcs[0].Target =
              static_cast<NodeId>(Proc.Nodes.size() + 100);
          return true;
        }
    return true;
  }
};
} // namespace

TEST(PassPipeline, VerifyEachNamesTheOffendingPass) {
  PipelineOptions Opts;
  Opts.VerifyEach = true;
  Opts.Passes = {"parse", "sema", "lower", "verify"};
  CompilationContext Ctx(figure2Source(), Opts);
  PassPipeline Pipeline;
  for (const std::string &Name : Opts.Passes)
    Pipeline.add(createPass(Name));
  Pipeline.add(std::make_unique<CorruptingPass>());
  EXPECT_FALSE(Pipeline.run(Ctx));
  EXPECT_NE(Ctx.Diags.str().find(
                "module verification failed after pass 'corrupt-cfg'"),
            std::string::npos)
      << Ctx.Diags.str();
  // Without --verify-each the corruption sails through the pipeline (the
  // stats record every pass as executed).
  PipelineOptions Lax = Opts;
  Lax.VerifyEach = false;
  CompilationContext Ctx2(figure2Source(), Lax);
  PassPipeline Pipeline2;
  for (const std::string &Name : Lax.Passes)
    Pipeline2.add(createPass(Name));
  Pipeline2.add(std::make_unique<CorruptingPass>());
  EXPECT_TRUE(Pipeline2.run(Ctx2));
  EXPECT_EQ(Pipeline2.stats().size(), 5u);
}

//===----------------------------------------------------------------------===//
// dedup-toss as a standalone pass
//===----------------------------------------------------------------------===//

TEST(PassPipeline, DedupTossPassIsAFixpoint) {
  PipelineOptions Opts;
  Opts.Passes = {"close", "dedup-toss"};
  Opts.VerifyEach = true;
  for (const char *Name : ExampleNames) {
    CompileResult R = compile(readExample(Name), Opts);
    ASSERT_TRUE(R.ok()) << Name << ": " << R.Diags.str();
    // Deduping the deduped module again removes nothing.
    Module Copy = R.M->clone();
    EXPECT_EQ(dedupTossBranches(Copy), 0u) << Name;
  }
}

TEST(PassPipeline, DedupTossNeverIncreasesTossCount) {
  PipelineOptions Plain;
  Plain.Passes = {"close"};
  PipelineOptions Dedup;
  Dedup.Passes = {"close", "dedup-toss"};
  for (const char *Name : ExampleNames) {
    CompileResult A = compile(readExample(Name), Plain);
    CompileResult B = compile(readExample(Name), Dedup);
    ASSERT_TRUE(A.ok() && B.ok()) << Name;
    EXPECT_LE(countTossNodes(*B.M), countTossNodes(*A.M)) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Idempotence: closing a closed program is the identity (modulo stats)
//===----------------------------------------------------------------------===//

void expectClosingFixpoint(const std::string &ClosedSource,
                           const std::string &Label) {
  CompileResult R = compile(ClosedSource);
  ASSERT_TRUE(R.ok()) << Label << ": " << R.Diags.str();
  EXPECT_EQ(R.Closing.NodesAfter, R.Closing.NodesBefore) << Label;
  EXPECT_EQ(R.Closing.TossNodesInserted, 0u) << Label;
  EXPECT_EQ(R.Closing.ParamsRemoved, 0u) << Label;
  EXPECT_EQ(R.Closing.EnvCallsRemoved, 0u) << Label;
}

TEST(PassPipeline, ClosingExamplesIsIdempotent) {
  for (const char *Name : ExampleNames) {
    CompileResult First = compile(readExample(Name));
    ASSERT_TRUE(First.ok()) << Name << ": " << First.Diags.str();
    expectClosingFixpoint(emitModuleSource(*First.M), Name);
  }
}

TEST(PassPipeline, ClosingRandomProgramsIsIdempotent) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    CompileResult First = compile(randomOpenProgram(Seed));
    ASSERT_TRUE(First.ok()) << "seed " << Seed << ": " << First.Diags.str();
    expectClosingFixpoint(emitModuleSource(*First.M),
                          "seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// Artifact
//===----------------------------------------------------------------------===//

TEST(PassPipeline, ArtifactCarriesSchemaPassesAndCounters) {
  PipelineOptions Opts;
  Opts.Passes = {"partition", "close"};
  CompileResult R = compile(readExample("resource_manager.mc"), Opts);
  ASSERT_TRUE(R.ok()) << R.Diags.str();
  std::string Json = compileArtifactToJson(R).str(/*Pretty=*/true);
  EXPECT_NE(Json.find("\"schema\": \"closer-close-stats-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"passes\""), std::string::npos);
  EXPECT_NE(Json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(Json.find("\"analyses\""), std::string::npos);
  EXPECT_NE(Json.find("\"computed\""), std::string::npos);
  EXPECT_NE(Json.find("\"reused\""), std::string::npos);
  EXPECT_NE(Json.find("\"nodes_before\""), std::string::npos);
  EXPECT_NE(Json.find("\"inputs_partitioned\""), std::string::npos);
}

} // namespace
} // namespace closer
